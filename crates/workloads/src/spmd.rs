//! SPMD / PVM-style parallel computations: the strong-locality end of the
//! spectrum. These mirror the paper's PVM corpus — "SPMD style parallel
//! computations … a number of them exhibited close neighbour communication
//! and scatter-gather patterns", including the Cowichan benchmark style.

use crate::Workload;
use cts_model::{ProcessId, Trace, TraceBuilder};

fn p(i: u32) -> ProcessId {
    ProcessId(i)
}

/// One binary-tree reduce + broadcast over all `n` processes — the global
/// synchronization phase (residual norms, convergence checks, barriers) that
/// every real SPMD code interleaves with its local exchanges. This traffic
/// crosses any bounded clustering, which is precisely what keeps the paper's
/// ratio curves from collapsing to the trivial one-cluster optimum.
fn tree_allreduce_phase(b: &mut TraceBuilder, n: u32) {
    for i in (1..n).rev() {
        let parent = (i - 1) / 2;
        let tok = b.send(p(i), p(parent)).unwrap();
        b.receive(p(parent), tok).unwrap();
    }
    for i in 1..n {
        let parent = (i - 1) / 2;
        let tok = b.send(p(parent), p(i)).unwrap();
        b.receive(p(i), tok).unwrap();
    }
}

/// 1-D halo exchange: every iteration each process swaps with its left and
/// right neighbours, then computes.
#[derive(Clone, Copy, Debug)]
pub struct Stencil1D {
    pub procs: u32,
    pub iters: u32,
}

impl Workload for Stencil1D {
    fn name(&self) -> String {
        format!("pvm/stencil1d-{}x{}", self.procs, self.iters)
    }

    fn generate(&self, _seed: u64) -> Trace {
        let n = self.procs;
        assert!(n >= 2);
        let mut b = TraceBuilder::new(n);
        for _ in 0..self.iters {
            // Exchange phase: everyone posts sends, then receives arrive.
            let mut tokens = Vec::new();
            for i in 0..n {
                if i > 0 {
                    tokens.push((i - 1, b.send(p(i), p(i - 1)).unwrap()));
                }
                if i + 1 < n {
                    tokens.push((i + 1, b.send(p(i), p(i + 1)).unwrap()));
                }
            }
            for (dst, tok) in tokens {
                b.receive(p(dst), tok).unwrap();
            }
            // Compute phase.
            for i in 0..n {
                b.internal(p(i)).unwrap();
            }
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// 2-D five-point stencil on a `rows × cols` process grid.
#[derive(Clone, Copy, Debug)]
pub struct Stencil2D {
    pub rows: u32,
    pub cols: u32,
    pub iters: u32,
}

impl Stencil2D {
    fn at(&self, r: u32, c: u32) -> u32 {
        r * self.cols + c
    }
}

impl Workload for Stencil2D {
    fn name(&self) -> String {
        format!("pvm/stencil2d-{}x{}x{}", self.rows, self.cols, self.iters)
    }

    fn generate(&self, _seed: u64) -> Trace {
        let n = self.rows * self.cols;
        assert!(n >= 2);
        let mut b = TraceBuilder::new(n);
        for _ in 0..self.iters {
            let mut tokens = Vec::new();
            for r in 0..self.rows {
                for c in 0..self.cols {
                    let me = self.at(r, c);
                    let mut push = |dst: u32, b: &mut TraceBuilder| {
                        let tok = b.send(p(me), p(dst)).unwrap();
                        tokens.push((dst, tok));
                    };
                    if r > 0 {
                        push(self.at(r - 1, c), &mut b);
                    }
                    if r + 1 < self.rows {
                        push(self.at(r + 1, c), &mut b);
                    }
                    if c > 0 {
                        push(self.at(r, c - 1), &mut b);
                    }
                    if c + 1 < self.cols {
                        push(self.at(r, c + 1), &mut b);
                    }
                }
            }
            for (dst, tok) in tokens {
                b.receive(p(dst), tok).unwrap();
            }
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// Token ring: a message circulates `rounds` times.
#[derive(Clone, Copy, Debug)]
pub struct Ring {
    pub procs: u32,
    pub rounds: u32,
}

impl Workload for Ring {
    fn name(&self) -> String {
        format!("pvm/ring-{}x{}", self.procs, self.rounds)
    }

    fn generate(&self, _seed: u64) -> Trace {
        let n = self.procs;
        assert!(n >= 2);
        let mut b = TraceBuilder::new(n);
        for _ in 0..self.rounds {
            for i in 0..n {
                let next = (i + 1) % n;
                let tok = b.send(p(i), p(next)).unwrap();
                b.receive(p(next), tok).unwrap();
                b.internal(p(next)).unwrap();
            }
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// Master/worker scatter-gather: the master scatters work, workers compute
/// and reply, master gathers.
#[derive(Clone, Copy, Debug)]
pub struct ScatterGather {
    pub workers: u32,
    pub rounds: u32,
    /// Internal events each worker performs per round.
    pub work: u32,
}

impl Workload for ScatterGather {
    fn name(&self) -> String {
        format!("pvm/scatter-gather-{}x{}", self.workers, self.rounds)
    }

    fn generate(&self, _seed: u64) -> Trace {
        let n = self.workers + 1; // process 0 is the master
        assert!(self.workers >= 1);
        let mut b = TraceBuilder::new(n);
        for _ in 0..self.rounds {
            let mut out = Vec::new();
            for w in 1..n {
                out.push((w, b.send(p(0), p(w)).unwrap()));
            }
            let mut back = Vec::new();
            for (w, tok) in out {
                b.receive(p(w), tok).unwrap();
                for _ in 0..self.work {
                    b.internal(p(w)).unwrap();
                }
                back.push(b.send(p(w), p(0)).unwrap());
            }
            for tok in back {
                b.receive(p(0), tok).unwrap();
            }
            b.internal(p(0)).unwrap();
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// Binary-tree allreduce: reduce to the root, then broadcast back down.
#[derive(Clone, Copy, Debug)]
pub struct TreeAllreduce {
    pub procs: u32,
    pub iters: u32,
}

impl Workload for TreeAllreduce {
    fn name(&self) -> String {
        format!("pvm/tree-allreduce-{}x{}", self.procs, self.iters)
    }

    fn generate(&self, _seed: u64) -> Trace {
        let n = self.procs;
        assert!(n >= 2);
        let mut b = TraceBuilder::new(n);
        for _ in 0..self.iters {
            // Reduce: children send to parent, deepest first.
            for i in (1..n).rev() {
                let parent = (i - 1) / 2;
                let tok = b.send(p(i), p(parent)).unwrap();
                b.receive(p(parent), tok).unwrap();
            }
            // Broadcast: parent sends to children, shallowest first.
            for i in 1..n {
                let parent = (i - 1) / 2;
                let tok = b.send(p(parent), p(i)).unwrap();
                b.receive(p(i), tok).unwrap();
            }
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// Hypercube butterfly exchange (requires a power-of-two process count):
/// `log2(n)` stages of pairwise exchange with partner `i ^ 2^k`.
#[derive(Clone, Copy, Debug)]
pub struct Butterfly {
    pub log2_procs: u32,
    pub iters: u32,
}

impl Workload for Butterfly {
    fn name(&self) -> String {
        format!("pvm/butterfly-{}x{}", 1u32 << self.log2_procs, self.iters)
    }

    fn generate(&self, _seed: u64) -> Trace {
        let n = 1u32 << self.log2_procs;
        assert!(n >= 2);
        let mut b = TraceBuilder::new(n);
        for _ in 0..self.iters {
            for k in 0..self.log2_procs {
                let bit = 1u32 << k;
                let mut tokens = Vec::new();
                for i in 0..n {
                    let partner = i ^ bit;
                    tokens.push((partner, b.send(p(i), p(partner)).unwrap()));
                }
                for (dst, tok) in tokens {
                    b.receive(p(dst), tok).unwrap();
                }
            }
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// Software pipeline: items flow through the stages in order.
#[derive(Clone, Copy, Debug)]
pub struct Pipeline {
    pub stages: u32,
    pub items: u32,
}

impl Workload for Pipeline {
    fn name(&self) -> String {
        format!("pvm/pipeline-{}x{}", self.stages, self.items)
    }

    fn generate(&self, _seed: u64) -> Trace {
        let n = self.stages;
        assert!(n >= 2);
        let mut b = TraceBuilder::new(n);
        for _ in 0..self.items {
            for s in 0..(n - 1) {
                b.internal(p(s)).unwrap();
                let tok = b.send(p(s), p(s + 1)).unwrap();
                b.receive(p(s + 1), tok).unwrap();
            }
            b.internal(p(n - 1)).unwrap();
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// A Cowichan-style phased composite: scatter (randmat) → halo exchange
/// (thresh/winnow) → tree reduce (norm) → gather (product). One trace
/// exercising several communication regimes in sequence, the way a real SPMD
/// benchmark run does.
#[derive(Clone, Copy, Debug)]
pub struct CowichanPhases {
    pub procs: u32,
    pub repeats: u32,
}

impl Workload for CowichanPhases {
    fn name(&self) -> String {
        format!("pvm/cowichan-{}x{}", self.procs, self.repeats)
    }

    fn generate(&self, _seed: u64) -> Trace {
        let n = self.procs;
        assert!(n >= 3);
        let mut b = TraceBuilder::new(n);
        for _ in 0..self.repeats {
            // Phase 1 (randmat): master scatters seeds.
            let mut out = Vec::new();
            for w in 1..n {
                out.push((w, b.send(p(0), p(w)).unwrap()));
            }
            for (w, tok) in out {
                b.receive(p(w), tok).unwrap();
                b.internal(p(w)).unwrap();
            }
            // Phase 2 (thresh): two rounds of 1-D halo exchange.
            for _ in 0..2 {
                let mut tokens = Vec::new();
                for i in 0..n {
                    if i > 0 {
                        tokens.push((i - 1, b.send(p(i), p(i - 1)).unwrap()));
                    }
                    if i + 1 < n {
                        tokens.push((i + 1, b.send(p(i), p(i + 1)).unwrap()));
                    }
                }
                for (dst, tok) in tokens {
                    b.receive(p(dst), tok).unwrap();
                }
            }
            // Phase 3 (norm): tree reduce to 0.
            for i in (1..n).rev() {
                let parent = (i - 1) / 2;
                let tok = b.send(p(i), p(parent)).unwrap();
                b.receive(p(parent), tok).unwrap();
            }
            // Phase 4 (product): gather final rows at the master.
            let mut back = Vec::new();
            for w in 1..n {
                back.push(b.send(p(w), p(0)).unwrap());
            }
            for tok in back {
                b.receive(p(0), tok).unwrap();
            }
        }
        b.finish_complete(self.name()).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::comm::{CommGraph, CommMatrix};
    use cts_model::Oracle;

    #[test]
    fn stencil1d_structure() {
        let t = Stencil1D { procs: 5, iters: 2 }.generate(0);
        // Per iter: 2*(n-1) messages + n internals.
        assert_eq!(t.num_messages(), 2 * (2 * 4));
        assert_eq!(t.num_internal(), 2 * 5);
        let m = CommMatrix::from_trace(&t);
        assert!(m.count(ProcessId(0), ProcessId(1)) > 0);
        assert_eq!(m.count(ProcessId(0), ProcessId(2)), 0);
    }

    #[test]
    fn stencil2d_neighbours_only() {
        let w = Stencil2D {
            rows: 3,
            cols: 3,
            iters: 1,
        };
        let t = w.generate(0);
        let m = CommMatrix::from_trace(&t);
        // Centre talks to its four neighbours only.
        let centre = ProcessId(4);
        assert!(m.count(centre, ProcessId(1)) > 0);
        assert!(m.count(centre, ProcessId(3)) > 0);
        assert!(m.count(centre, ProcessId(5)) > 0);
        assert!(m.count(centre, ProcessId(7)) > 0);
        assert_eq!(m.count(centre, ProcessId(0)), 0);
        assert_eq!(m.count(centre, ProcessId(8)), 0);
    }

    #[test]
    fn ring_is_causally_chained() {
        let t = Ring {
            procs: 4,
            rounds: 1,
        }
        .generate(0);
        let o = Oracle::compute(&t);
        // First send on P0 precedes the last event of the round on P0.
        let first = cts_model::EventId::new(ProcessId(0), cts_model::EventIndex(1));
        let last_ev = t.events().last().unwrap().id;
        assert!(o.happened_before(&t, first, last_ev));
    }

    #[test]
    fn scatter_gather_hub_degree() {
        let w = ScatterGather {
            workers: 6,
            rounds: 2,
            work: 1,
        };
        let t = w.generate(0);
        let g = CommGraph::from_trace(&t);
        assert_eq!(g.degree(ProcessId(0)), 6);
        assert_eq!(g.degree(ProcessId(3)), 1);
    }

    #[test]
    fn tree_allreduce_roundtrip_count() {
        let t = TreeAllreduce { procs: 7, iters: 3 }.generate(0);
        assert_eq!(t.num_messages(), 3 * 2 * 6);
    }

    #[test]
    fn butterfly_partner_structure() {
        let t = Butterfly {
            log2_procs: 3,
            iters: 1,
        }
        .generate(0);
        let m = CommMatrix::from_trace(&t);
        // Partners at Hamming distance 1 communicate; others don't.
        assert!(m.count(ProcessId(0), ProcessId(1)) > 0);
        assert!(m.count(ProcessId(0), ProcessId(2)) > 0);
        assert!(m.count(ProcessId(0), ProcessId(4)) > 0);
        assert_eq!(m.count(ProcessId(0), ProcessId(3)), 0);
        assert_eq!(m.count(ProcessId(0), ProcessId(7)), 0);
    }

    #[test]
    fn pipeline_counts() {
        let t = Pipeline {
            stages: 4,
            items: 5,
        }
        .generate(0);
        assert_eq!(t.num_messages(), 5 * 3);
        assert_eq!(t.num_internal(), 5 * 4);
    }

    #[test]
    fn cowichan_runs_all_phases() {
        let t = CowichanPhases {
            procs: 8,
            repeats: 2,
        }
        .generate(0);
        assert!(t.num_messages() > 0);
        // master + halo: both hub and neighbour structure present.
        let m = CommMatrix::from_trace(&t);
        assert!(m.count(ProcessId(0), ProcessId(7)) > 0); // scatter/gather
        assert!(m.count(ProcessId(3), ProcessId(4)) > 0); // halo
    }
}

/// 1-D halo exchange with *blocked* weights: neighbour pairs inside a block
/// of `block` processes exchange twice per iteration, pairs straddling a
/// block boundary once. Real SPMD codes have exactly this heterogeneity
/// (logical subdomains, multigrid levels, …); it is what gives the static
/// clusterer a signal to find subdomain boundaries.
#[derive(Clone, Copy, Debug)]
pub struct BlockedStencil1D {
    pub procs: u32,
    pub iters: u32,
    pub block: u32,
}

impl Workload for BlockedStencil1D {
    fn name(&self) -> String {
        format!(
            "pvm/blocked-stencil1d-{}x{}b{}",
            self.procs, self.iters, self.block
        )
    }

    fn generate(&self, _seed: u64) -> Trace {
        let n = self.procs;
        assert!(n >= 2 && self.block >= 2);
        let mut b = TraceBuilder::new(n);
        for _ in 0..self.iters {
            let mut tokens = Vec::new();
            for i in 0..(n - 1) {
                let weight = if i / self.block == (i + 1) / self.block {
                    2
                } else {
                    1
                };
                for _ in 0..weight {
                    tokens.push((i + 1, b.send(p(i), p(i + 1)).unwrap()));
                    tokens.push((i, b.send(p(i + 1), p(i)).unwrap()));
                }
            }
            for (dst, tok) in tokens {
                b.receive(p(dst), tok).unwrap();
            }
            for i in 0..n {
                b.internal(p(i)).unwrap();
            }
            // Global residual-norm allreduce: the cross-subdomain traffic
            // floor every real iterative solver has.
            tree_allreduce_phase(&mut b, n);
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// 2-D stencil with row-major decomposition weights: horizontal (same-row)
/// neighbours exchange twice per iteration, vertical neighbours once — the
/// communication profile of a row-blocked domain decomposition.
#[derive(Clone, Copy, Debug)]
pub struct RowMajorStencil2D {
    pub rows: u32,
    pub cols: u32,
    pub iters: u32,
}

impl RowMajorStencil2D {
    fn at(&self, r: u32, c: u32) -> u32 {
        r * self.cols + c
    }
}

impl Workload for RowMajorStencil2D {
    fn name(&self) -> String {
        format!(
            "pvm/rowmajor-stencil2d-{}x{}x{}",
            self.rows, self.cols, self.iters
        )
    }

    fn generate(&self, _seed: u64) -> Trace {
        let n = self.rows * self.cols;
        assert!(n >= 2);
        let mut b = TraceBuilder::new(n);
        for _ in 0..self.iters {
            let mut tokens = Vec::new();
            for r in 0..self.rows {
                for c in 0..self.cols {
                    let me = self.at(r, c);
                    // Horizontal, heavy.
                    if c + 1 < self.cols {
                        let right = self.at(r, c + 1);
                        for _ in 0..2 {
                            tokens.push((right, b.send(p(me), p(right)).unwrap()));
                            tokens.push((me, b.send(p(right), p(me)).unwrap()));
                        }
                    }
                    // Vertical, light.
                    if r + 1 < self.rows {
                        let down = self.at(r + 1, c);
                        tokens.push((down, b.send(p(me), p(down)).unwrap()));
                        tokens.push((me, b.send(p(down), p(me)).unwrap()));
                    }
                }
            }
            for (dst, tok) in tokens {
                b.receive(p(dst), tok).unwrap();
            }
            tree_allreduce_phase(&mut b, n);
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// Token ring organized in convoys: links inside a convoy of `convoy`
/// processes carry two tokens per round, convoy-boundary links one.
#[derive(Clone, Copy, Debug)]
pub struct ConvoyRing {
    pub procs: u32,
    pub rounds: u32,
    pub convoy: u32,
}

impl Workload for ConvoyRing {
    fn name(&self) -> String {
        format!(
            "pvm/convoy-ring-{}x{}c{}",
            self.procs, self.rounds, self.convoy
        )
    }

    fn generate(&self, _seed: u64) -> Trace {
        let n = self.procs;
        assert!(n >= 2 && self.convoy >= 2);
        let mut b = TraceBuilder::new(n);
        for round in 0..self.rounds {
            for i in 0..n {
                let next = (i + 1) % n;
                let weight = if next != 0 && i / self.convoy == next / self.convoy {
                    2
                } else {
                    1
                };
                for _ in 0..weight {
                    let tok = b.send(p(i), p(next)).unwrap();
                    b.receive(p(next), tok).unwrap();
                }
            }
            if round % 2 == 0 {
                tree_allreduce_phase(&mut b, n);
            }
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// Pipeline whose stages form groups: an item handoff inside a group is
/// acknowledged (two messages), a handoff between groups is fire-and-forget.
#[derive(Clone, Copy, Debug)]
pub struct StagedPipeline {
    pub stages: u32,
    pub items: u32,
    pub group: u32,
}

impl Workload for StagedPipeline {
    fn name(&self) -> String {
        format!(
            "pvm/staged-pipeline-{}x{}g{}",
            self.stages, self.items, self.group
        )
    }

    fn generate(&self, _seed: u64) -> Trace {
        let n = self.stages;
        assert!(n >= 2 && self.group >= 2);
        let mut b = TraceBuilder::new(n);
        for _ in 0..self.items {
            for s in 0..(n - 1) {
                b.internal(p(s)).unwrap();
                let tok = b.send(p(s), p(s + 1)).unwrap();
                b.receive(p(s + 1), tok).unwrap();
                if s / self.group == (s + 1) / self.group {
                    let ack = b.send(p(s + 1), p(s)).unwrap();
                    b.receive(p(s), ack).unwrap();
                }
            }
            b.internal(p(n - 1)).unwrap();
            // Flow-control credit wave back along the tree: the cross-group
            // traffic floor of a real pipeline with bounded buffers.
            tree_allreduce_phase(&mut b, n);
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// Scatter-gather organized in independent teams, each with its own master —
/// the shape of real master/worker codes at scale (hierarchical masters). A
/// light master-to-master ring keeps the computation connected.
#[derive(Clone, Copy, Debug)]
pub struct TeamScatterGather {
    pub teams: u32,
    pub workers_per_team: u32,
    pub rounds: u32,
    pub work: u32,
}

impl TeamScatterGather {
    fn team_size(&self) -> u32 {
        self.workers_per_team + 1
    }
    fn master(&self, t: u32) -> u32 {
        t * self.team_size()
    }
    fn worker(&self, t: u32, w: u32) -> u32 {
        t * self.team_size() + 1 + w
    }
    /// Total process count.
    pub fn procs(&self) -> u32 {
        self.teams * self.team_size()
    }
}

impl Workload for TeamScatterGather {
    fn name(&self) -> String {
        format!(
            "pvm/team-scatter-{}t{}w{}r",
            self.teams, self.workers_per_team, self.rounds
        )
    }

    fn generate(&self, _seed: u64) -> Trace {
        assert!(self.teams >= 2 && self.workers_per_team >= 1);
        let mut b = TraceBuilder::new(self.procs());
        for round in 0..self.rounds {
            for t in 0..self.teams {
                let mut out = Vec::new();
                for w in 0..self.workers_per_team {
                    out.push((w, b.send(p(self.master(t)), p(self.worker(t, w))).unwrap()));
                }
                let mut back = Vec::new();
                for (w, tok) in out {
                    b.receive(p(self.worker(t, w)), tok).unwrap();
                    for _ in 0..self.work {
                        b.internal(p(self.worker(t, w))).unwrap();
                    }
                    back.push(b.send(p(self.worker(t, w)), p(self.master(t))).unwrap());
                }
                for tok in back {
                    b.receive(p(self.master(t)), tok).unwrap();
                }
            }
            // Master coordination, every round, both directions: the
            // cross-team traffic floor.
            for t in 0..self.teams {
                let next = (t + 1) % self.teams;
                let tok = b.send(p(self.master(t)), p(self.master(next))).unwrap();
                b.receive(p(self.master(next)), tok).unwrap();
                let back = b.send(p(self.master(next)), p(self.master(t))).unwrap();
                b.receive(p(self.master(t)), back).unwrap();
            }
            let _ = round;
        }
        b.finish_complete(self.name()).unwrap()
    }
}

#[cfg(test)]
mod blocked_tests {
    use super::*;
    use cts_model::comm::CommMatrix;

    #[test]
    fn blocked_stencil_weights_blocks_heavier() {
        let t = BlockedStencil1D {
            procs: 8,
            iters: 2,
            block: 4,
        }
        .generate(0);
        let m = CommMatrix::from_trace(&t);
        // Intra-block pairs outweigh boundary pairs; a tree-reduce floor
        // connects everything.
        assert!(
            m.count(ProcessId(1), ProcessId(2)) > m.count(ProcessId(3), ProcessId(4)),
            "intra {} !> boundary {}",
            m.count(ProcessId(1), ProcessId(2)),
            m.count(ProcessId(3), ProcessId(4))
        );
        // Tree edge (0,1) present beyond the halo traffic.
        assert!(m.count(ProcessId(0), ProcessId(1)) >= 8);
    }

    #[test]
    fn rowmajor_stencil_horizontal_heavier() {
        let w = RowMajorStencil2D {
            rows: 3,
            cols: 3,
            iters: 1,
        };
        let t = w.generate(0);
        let m = CommMatrix::from_trace(&t);
        // Horizontal is heavier than vertical; the tree phase adds a floor.
        assert!(m.count(ProcessId(0), ProcessId(1)) > m.count(ProcessId(0), ProcessId(3)));
        // (0,4) is not a grid edge; only tree traffic may touch it (4's tree
        // parent is 1, so none here).
        assert_eq!(m.count(ProcessId(0), ProcessId(4)), 0);
    }

    #[test]
    fn convoy_ring_boundary_links_lighter() {
        let t = ConvoyRing {
            procs: 8,
            rounds: 3,
            convoy: 4,
        }
        .generate(0);
        let m = CommMatrix::from_trace(&t);
        assert!(m.count(ProcessId(1), ProcessId(2)) > m.count(ProcessId(3), ProcessId(4)));
        assert!(m.count(ProcessId(7), ProcessId(0)) >= 3); // wrap link exists
    }

    #[test]
    fn staged_pipeline_acks_within_groups() {
        let t = StagedPipeline {
            stages: 6,
            items: 4,
            group: 3,
        }
        .generate(0);
        let m = CommMatrix::from_trace(&t);
        // In-group handoffs (item+ack) outweigh cross-group (item only).
        assert!(m.count(ProcessId(1), ProcessId(2)) > m.count(ProcessId(2), ProcessId(3)));
    }

    #[test]
    fn team_scatter_isolates_teams() {
        let w = TeamScatterGather {
            teams: 3,
            workers_per_team: 4,
            rounds: 4,
            work: 1,
        };
        let t = w.generate(0);
        assert_eq!(t.num_processes(), 15);
        let m = CommMatrix::from_trace(&t);
        // Worker of team 0 never talks to worker of team 1.
        assert_eq!(m.count(ProcessId(1), ProcessId(6)), 0);
        // Masters are connected (coordination ring).
        assert!(m.count(ProcessId(0), ProcessId(5)) > 0);
        // Team-internal traffic in aggregate dominates the master ring: the
        // master exchanges with each of its 4 workers every round but with
        // its ring neighbour only once per round each way.
        let team0_internal: u64 = (1..5).map(|w| m.count(ProcessId(0), ProcessId(w))).sum();
        assert!(team0_internal > 2 * m.count(ProcessId(0), ProcessId(5)));
    }
}
