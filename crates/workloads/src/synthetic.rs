//! Adversarial and parameter-controlled synthetic patterns. These let the
//! experiments place computations precisely on the locality spectrum —
//! including the no-locality extreme where cluster timestamps should (and
//! do) lose most of their advantage.

use crate::{rng, Workload};
use cts_model::{ProcessId, Trace, TraceBuilder};
use cts_util::prng::Rng;

fn p(i: u32) -> ProcessId {
    ProcessId(i)
}

/// Uniform random messaging: every message picks an independent (sender,
/// receiver) pair. No locality whatsoever — the worst case for clustering.
#[derive(Clone, Copy, Debug)]
pub struct UniformRandom {
    pub procs: u32,
    pub messages: u32,
}

impl Workload for UniformRandom {
    fn name(&self) -> String {
        format!("synthetic/uniform-{}x{}", self.procs, self.messages)
    }

    fn generate(&self, seed: u64) -> Trace {
        assert!(self.procs >= 2);
        let mut r = rng(seed);
        let mut b = TraceBuilder::new(self.procs);
        for _ in 0..self.messages {
            let a = r.gen_range(0..self.procs);
            let q = (a + 1 + r.gen_range(0..self.procs - 1)) % self.procs;
            let tok = b.send(p(a), p(q)).unwrap();
            b.receive(p(q), tok).unwrap();
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// Planted clusters: processes are grouped; each message stays inside the
/// sender's group with probability `p_intra`. The knob that sweeps a
/// computation from perfectly clusterable to uniform.
#[derive(Clone, Copy, Debug)]
pub struct PlantedClusters {
    pub procs: u32,
    pub groups: u32,
    pub messages: u32,
    pub p_intra: f64,
}

impl Workload for PlantedClusters {
    fn name(&self) -> String {
        format!(
            "synthetic/planted-{}g{}i{:02}",
            self.procs,
            self.groups,
            (self.p_intra * 100.0) as u32
        )
    }

    fn generate(&self, seed: u64) -> Trace {
        assert!(self.groups >= 1 && self.procs >= 2 * self.groups);
        let mut r = rng(seed);
        let mut b = TraceBuilder::new(self.procs);
        let group_of = |x: u32| x % self.groups; // striped assignment
        for _ in 0..self.messages {
            let a = r.gen_range(0..self.procs);
            // With a single group there is no "other group": every message
            // is intra-group by definition (guards the rejection loop below
            // against non-termination).
            let q = if self.groups == 1 || r.gen_bool(self.p_intra) {
                // Same group, different process.
                loop {
                    let cand = group_of(a) + self.groups * r.gen_range(0..self.procs / self.groups);
                    if cand != a && cand < self.procs {
                        break cand;
                    }
                }
            } else {
                loop {
                    let cand = r.gen_range(0..self.procs);
                    if group_of(cand) != group_of(a) {
                        break cand;
                    }
                }
            };
            let tok = b.send(p(a), p(q)).unwrap();
            b.receive(p(q), tok).unwrap();
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// Hotspot: every process exchanges with a single server process 0 (an
/// extreme hub; clusters larger than {hub, one client} buy little).
#[derive(Clone, Copy, Debug)]
pub struct Hotspot {
    pub procs: u32,
    pub rounds: u32,
}

impl Workload for Hotspot {
    fn name(&self) -> String {
        format!("synthetic/hotspot-{}x{}", self.procs, self.rounds)
    }

    fn generate(&self, _seed: u64) -> Trace {
        assert!(self.procs >= 2);
        let mut b = TraceBuilder::new(self.procs);
        for _ in 0..self.rounds {
            for c in 1..self.procs {
                let tok = b.send(p(c), p(0)).unwrap();
                b.receive(p(0), tok).unwrap();
                let back = b.send(p(0), p(c)).unwrap();
                b.receive(p(c), back).unwrap();
            }
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// Hierarchical organization: a `branching`-ary process tree where most
/// traffic goes to the parent and some to the grandparent. Layered locality
/// at multiple scales.
#[derive(Clone, Copy, Debug)]
pub struct Hierarchy {
    pub procs: u32,
    pub branching: u32,
    pub messages: u32,
}

impl Workload for Hierarchy {
    fn name(&self) -> String {
        format!(
            "synthetic/hier-{}b{}m{}",
            self.procs, self.branching, self.messages
        )
    }

    fn generate(&self, seed: u64) -> Trace {
        assert!(self.procs >= 2 && self.branching >= 2);
        let mut r = rng(seed);
        let mut b = TraceBuilder::new(self.procs);
        let parent = |x: u32| (x - 1) / self.branching;
        for _ in 0..self.messages {
            let a = 1 + r.gen_range(0..self.procs - 1); // non-root
            let q = if a > self.branching && r.gen_bool(0.05) {
                parent(parent(a)) // grandparent
            } else {
                parent(a)
            };
            let tok = b.send(p(a), p(q)).unwrap();
            b.receive(p(q), tok).unwrap();
            if r.gen_bool(0.5) {
                let back = b.send(p(q), p(a)).unwrap();
                b.receive(p(a), back).unwrap();
            }
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// Drifting affinity: processes start with one home group, and at the switch
/// point a fraction of them permanently change home group. Merge-based
/// clustering locks in the first phase's structure; the paper's future-work
/// *migration* variant is designed for exactly this shape.
#[derive(Clone, Copy, Debug)]
pub struct DriftingAffinity {
    pub procs: u32,
    pub groups: u32,
    /// Messages per phase.
    pub messages_per_phase: u32,
    /// Fraction of processes that change home group at the switch.
    pub drift_fraction: f64,
}

impl Workload for DriftingAffinity {
    fn name(&self) -> String {
        format!(
            "synthetic/drift-{}g{}d{:02}",
            self.procs,
            self.groups,
            (self.drift_fraction * 100.0) as u32
        )
    }

    fn generate(&self, seed: u64) -> Trace {
        assert!(self.groups >= 2 && self.procs >= 2 * self.groups);
        let mut r = rng(seed);
        let mut b = TraceBuilder::new(self.procs);
        let mut home: Vec<u32> = (0..self.procs).map(|x| x % self.groups).collect();
        for phase in 0..2 {
            if phase == 1 {
                for h in home.iter_mut() {
                    if r.gen_bool(self.drift_fraction) {
                        *h = (*h + 1 + r.gen_range(0..self.groups - 1)) % self.groups;
                    }
                }
            }
            for _ in 0..self.messages_per_phase {
                let a = r.gen_range(0..self.procs);
                // Find a same-home partner (falls back to any process).
                let mut q = None;
                for _ in 0..16 {
                    let cand = r.gen_range(0..self.procs);
                    if cand != a && home[cand as usize] == home[a as usize] {
                        q = Some(cand);
                        break;
                    }
                }
                let q = q.unwrap_or((a + 1) % self.procs);
                let tok = b.send(p(a), p(q)).unwrap();
                b.receive(p(q), tok).unwrap();
            }
        }
        b.finish_complete(self.name()).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::comm::CommMatrix;
    use cts_model::stats::TraceStats;

    #[test]
    fn uniform_spreads_communication() {
        let t = UniformRandom {
            procs: 12,
            messages: 600,
        }
        .generate(23);
        let st = TraceStats::compute(&t);
        // With 600 messages over 66 pairs, nearly every pair communicates.
        assert!(st.mean_degree > 8.0, "mean degree {}", st.mean_degree);
        assert!(st.locality_top3 < 0.6);
    }

    #[test]
    fn planted_clusters_respect_p_intra_extremes() {
        let pure = PlantedClusters {
            procs: 12,
            groups: 3,
            messages: 200,
            p_intra: 1.0,
        }
        .generate(5);
        let m = CommMatrix::from_trace(&pure);
        // No cross-group pair communicates (groups are striped mod 3).
        for a in 0..12u32 {
            for q in 0..12u32 {
                if a != q && a % 3 != q % 3 {
                    assert_eq!(m.count(p(a), p(q)), 0, "{a}->{q}");
                }
            }
        }
        let cross = PlantedClusters {
            p_intra: 0.0,
            ..PlantedClusters {
                procs: 12,
                groups: 3,
                messages: 200,
                p_intra: 0.0,
            }
        }
        .generate(5);
        let mc = CommMatrix::from_trace(&cross);
        for a in 0..12u32 {
            for q in 0..12u32 {
                if a % 3 == q % 3 {
                    assert_eq!(mc.count(p(a), p(q)), 0);
                }
            }
        }
    }

    #[test]
    fn planted_single_group_terminates() {
        // Regression: groups = 1 used to hang in the inter-group rejection
        // loop (there is no other group to draw from).
        let t = PlantedClusters {
            procs: 8,
            groups: 1,
            messages: 200,
            p_intra: 0.9,
        }
        .generate(1);
        assert_eq!(t.num_messages(), 200);
    }

    #[test]
    fn hotspot_all_roads_lead_to_zero() {
        let t = Hotspot {
            procs: 8,
            rounds: 3,
        }
        .generate(0);
        let m = CommMatrix::from_trace(&t);
        for a in 1..8u32 {
            assert!(m.count(p(0), p(a)) > 0);
            for q in 1..8u32 {
                if a != q {
                    assert_eq!(m.count(p(a), p(q)), 0);
                }
            }
        }
    }

    #[test]
    fn drifting_affinity_changes_partners() {
        let w = DriftingAffinity {
            procs: 12,
            groups: 3,
            messages_per_phase: 150,
            drift_fraction: 0.5,
        };
        let t = w.generate(3);
        assert_eq!(t.num_messages(), 300);
        // Deterministic under seed.
        assert_eq!(t.events(), w.generate(3).events());
        // Phase structure: communication graph is denser than a single
        // static grouping would produce (drifters bridge groups).
        let st = TraceStats::compute(&t);
        assert!(st.mean_degree > 3.0, "drift should widen partner sets");
    }

    #[test]
    fn hierarchy_traffic_follows_tree() {
        let t = Hierarchy {
            procs: 13,
            branching: 3,
            messages: 150,
        }
        .generate(31);
        let m = CommMatrix::from_trace(&t);
        // Siblings never talk directly.
        assert_eq!(m.count(p(1), p(2)), 0);
        // Children do talk to the root.
        assert!(m.count(p(1), p(0)) > 0);
    }
}
