//! DCE-style business applications: synchronous RPC between tiers. The
//! paper's DCE corpus was "sample business-application code"; DCE RPC is
//! synchronous, so these generators lean on synchronous event pairs —
//! which also exercises the "synchronous communications count twice" rule of
//! §3.1.

use crate::{rng, Workload};
use cts_model::{ProcessId, Trace, TraceBuilder};
use cts_util::prng::Rng;

fn p(i: u32) -> ProcessId {
    ProcessId(i)
}

/// Three-tier business application: clients make synchronous RPCs to
/// application servers, which make synchronous RPCs to databases. Clients
/// are sticky to a home server; servers are sticky to a primary database.
#[derive(Clone, Copy, Debug)]
pub struct ThreeTier {
    pub clients: u32,
    pub servers: u32,
    pub databases: u32,
    pub transactions: u32,
}

impl ThreeTier {
    fn server(&self, s: u32) -> u32 {
        self.clients + s
    }
    fn database(&self, d: u32) -> u32 {
        self.clients + self.servers + d
    }
    /// Total process count.
    pub fn procs(&self) -> u32 {
        self.clients + self.servers + self.databases
    }
}

impl Workload for ThreeTier {
    fn name(&self) -> String {
        format!(
            "dce/three-tier-c{}s{}d{}t{}",
            self.clients, self.servers, self.databases, self.transactions
        )
    }

    fn generate(&self, seed: u64) -> Trace {
        assert!(self.clients >= 1 && self.servers >= 1 && self.databases >= 1);
        let mut r = rng(seed);
        let mut b = TraceBuilder::new(self.procs());
        for txn in 0..self.transactions {
            let c = txn % self.clients;
            // Home server with occasional failover.
            let s = if r.gen_bool(0.9) {
                c % self.servers
            } else {
                r.gen_range(0..self.servers)
            };
            let d = if r.gen_bool(0.9) {
                s % self.databases
            } else {
                r.gen_range(0..self.databases)
            };
            b.internal(p(c)).unwrap();
            b.sync(p(c), p(self.server(s))).unwrap(); // RPC call
            b.internal(p(self.server(s))).unwrap();
            b.sync(p(self.server(s)), p(self.database(d))).unwrap(); // query
            b.internal(p(self.database(d))).unwrap();
            b.sync(p(self.database(d)), p(self.server(s))).unwrap(); // result
            b.sync(p(self.server(s)), p(c)).unwrap(); // RPC return
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// A multi-office business workflow mixing synchronous RPC (within an
/// office) and asynchronous mail (between offices).
#[derive(Clone, Copy, Debug)]
pub struct BusinessWorkflow {
    pub offices: u32,
    /// Staff per office (≥ 2).
    pub staff: u32,
    pub cases: u32,
}

impl BusinessWorkflow {
    fn member(&self, office: u32, m: u32) -> u32 {
        office * self.staff + m
    }
    /// Total process count.
    pub fn procs(&self) -> u32 {
        self.offices * self.staff
    }
}

impl Workload for BusinessWorkflow {
    fn name(&self) -> String {
        format!(
            "dce/workflow-o{}s{}c{}",
            self.offices, self.staff, self.cases
        )
    }

    fn generate(&self, seed: u64) -> Trace {
        assert!(self.offices >= 2 && self.staff >= 2);
        let mut r = rng(seed);
        let mut b = TraceBuilder::new(self.procs());
        for case in 0..self.cases {
            let office = case % self.offices;
            let clerk = self.member(office, 0);
            // Intra-office synchronous processing among the staff.
            for m in 1..self.staff {
                b.sync(p(clerk), p(self.member(office, m))).unwrap();
                b.internal(p(self.member(office, m))).unwrap();
            }
            // Occasionally escalate to another office asynchronously.
            if r.gen_bool(0.5) {
                let other = (office + 1 + r.gen_range(0..self.offices - 1)) % self.offices;
                let remote = self.member(other, r.gen_range(0..self.staff));
                let tok = b.send(p(clerk), p(remote)).unwrap();
                b.receive(p(remote), tok).unwrap();
                let back = b.send(p(remote), p(clerk)).unwrap();
                b.receive(p(clerk), back).unwrap();
            }
        }
        b.finish_complete(self.name()).unwrap()
    }
}

/// A purely synchronous computation (every communication a sync pair), used
/// to exercise the Garg/Skawratananond baseline, which applies only to
/// synchronous computations — the paper could not compare against it because
/// "none of our computations contain exclusively synchronous communication".
#[derive(Clone, Copy, Debug)]
pub struct AllSync {
    pub procs: u32,
    pub communications: u32,
    /// Department size: most synchronous calls stay within a department of
    /// this many processes (locality).
    pub partners: u32,
}

impl Workload for AllSync {
    fn name(&self) -> String {
        format!("dce/all-sync-{}x{}", self.procs, self.communications)
    }

    fn generate(&self, seed: u64) -> Trace {
        assert!(self.procs >= 2);
        let mut r = rng(seed);
        let mut b = TraceBuilder::new(self.procs);
        for _ in 0..self.communications {
            let a = r.gen_range(0..self.procs);
            // Departments of `partners` processes; most RPCs stay inside the
            // department, some reach across (real business-code affinity).
            let dept = self.partners.clamp(2, self.procs);
            let q = if r.gen_bool(0.85) {
                let base = (a / dept) * dept;
                loop {
                    let cand = base + r.gen_range(0..dept);
                    if cand != a && cand < self.procs {
                        break cand;
                    }
                }
            } else {
                (a + 1 + r.gen_range(0..self.procs - 1)) % self.procs
            };
            b.sync(p(a), p(q)).unwrap();
        }
        b.finish_complete(self.name()).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::stats::TraceStats;

    #[test]
    fn three_tier_is_all_sync_rpc() {
        let w = ThreeTier {
            clients: 4,
            servers: 2,
            databases: 1,
            transactions: 8,
        };
        let t = w.generate(9);
        assert_eq!(t.num_messages(), 0);
        assert_eq!(t.num_sync_pairs(), 8 * 4);
        assert_eq!(t.num_processes(), 7);
    }

    #[test]
    fn workflow_mixes_sync_and_async() {
        let w = BusinessWorkflow {
            offices: 3,
            staff: 3,
            cases: 150,
        };
        let t = w.generate(13);
        let st = TraceStats::compute(&t);
        assert!(st.num_sync_pairs > 0);
        assert!(st.num_messages > 0, "escalations should occur at 150 cases");
    }

    #[test]
    fn all_sync_has_no_plain_messages() {
        let w = AllSync {
            procs: 10,
            communications: 50,
            partners: 2,
        };
        let t = w.generate(17);
        assert_eq!(t.num_messages(), 0);
        assert_eq!(t.num_sync_pairs(), 50);
        // Locality: intra-department edges dominate.
        let m = cts_model::comm::CommMatrix::from_trace(&t);
        let intra: u64 = (0..10u32)
            .flat_map(|a| (0..10u32).map(move |q| (a, q)))
            .filter(|&(a, q)| a < q && a / 2 == q / 2)
            .map(|(a, q)| m.count(p(a), p(q)))
            .sum();
        assert!(intra * 2 > m.total(), "intra {intra} of {}", m.total());
    }

    #[test]
    fn deterministic_under_seed() {
        let w = ThreeTier {
            clients: 2,
            servers: 2,
            databases: 2,
            transactions: 5,
        };
        assert_eq!(w.generate(1).events(), w.generate(1).events());
    }
}

/// A podded three-tier deployment: each pod is one application server, one
/// database, and a handful of bound clients; cross-pod failover is rare.
/// This is the business-app shape where each department's clients hit their
/// departmental server — locality at pod scale.
#[derive(Clone, Copy, Debug)]
pub struct PoddedThreeTier {
    pub pods: u32,
    pub clients_per_pod: u32,
    pub transactions: u32,
    /// Probability a transaction fails over to another pod's server.
    pub failover: f64,
}

impl PoddedThreeTier {
    fn pod_size(&self) -> u32 {
        self.clients_per_pod + 2
    }
    fn client(&self, pod: u32, c: u32) -> u32 {
        pod * self.pod_size() + c
    }
    fn server(&self, pod: u32) -> u32 {
        pod * self.pod_size() + self.clients_per_pod
    }
    fn database(&self, pod: u32) -> u32 {
        pod * self.pod_size() + self.clients_per_pod + 1
    }
    /// Total process count.
    pub fn procs(&self) -> u32 {
        self.pods * self.pod_size()
    }
}

impl Workload for PoddedThreeTier {
    fn name(&self) -> String {
        format!(
            "dce/podded-three-tier-{}x(c{})t{}",
            self.pods, self.clients_per_pod, self.transactions
        )
    }

    fn generate(&self, seed: u64) -> Trace {
        assert!(self.pods >= 2 && self.clients_per_pod >= 1);
        let mut r = rng(seed);
        let mut b = TraceBuilder::new(self.procs());
        let total_clients = self.pods * self.clients_per_pod;
        for txn in 0..self.transactions {
            let flat = txn % total_clients;
            let home = flat / self.clients_per_pod;
            let c = self.client(home, flat % self.clients_per_pod);
            let pod = if r.gen_bool(self.failover) {
                (home + 1 + r.gen_range(0..self.pods - 1)) % self.pods
            } else {
                home
            };
            b.internal(p(c)).unwrap();
            b.sync(p(c), p(self.server(pod))).unwrap();
            b.sync(p(self.server(pod)), p(self.database(pod))).unwrap();
            b.internal(p(self.database(pod))).unwrap();
            b.sync(p(self.database(pod)), p(self.server(pod))).unwrap();
            b.sync(p(self.server(pod)), p(c)).unwrap();
        }
        b.finish_complete(self.name()).unwrap()
    }
}

#[cfg(test)]
mod podded_tests {
    use super::*;
    use cts_model::comm::CommMatrix;

    #[test]
    fn pods_are_mostly_isolated() {
        let w = PoddedThreeTier {
            pods: 4,
            clients_per_pod: 3,
            transactions: 200,
            failover: 0.0,
        };
        let t = w.generate(3);
        assert_eq!(t.num_processes(), 20);
        let m = CommMatrix::from_trace(&t);
        // Pod 0's client never reaches pod 1's server without failover.
        assert_eq!(m.count(p(w.client(0, 0)), p(w.server(1))), 0);
        assert!(m.count(p(w.client(0, 0)), p(w.server(0))) > 0);
        // Databases are pod-private.
        assert_eq!(m.count(p(w.database(0)), p(w.server(1))), 0);
    }

    #[test]
    fn failover_bridges_pods() {
        let w = PoddedThreeTier {
            pods: 3,
            clients_per_pod: 2,
            transactions: 300,
            failover: 0.2,
        };
        let t = w.generate(5);
        let m = CommMatrix::from_trace(&t);
        let cross: u64 = (0..3u32)
            .flat_map(|a| (0..3u32).map(move |b| (a, b)))
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| m.count(p(w.server(a)), p(w.client(b, 0))))
            .sum();
        assert!(cross > 0);
    }

    #[test]
    fn all_communication_is_synchronous() {
        let w = PoddedThreeTier {
            pods: 2,
            clients_per_pod: 2,
            transactions: 20,
            failover: 0.1,
        };
        let t = w.generate(1);
        assert_eq!(t.num_messages(), 0);
        assert_eq!(t.num_sync_pairs(), 20 * 4);
    }
}
