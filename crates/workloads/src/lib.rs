//! # cts-workloads — synthetic parallel/distributed trace generators
//!
//! The paper evaluates its clustering strategies over more than 50 captured
//! computations from three environments — PVM (SPMD parallel codes including
//! the Cowichan benchmarks, nearest-neighbour and scatter-gather patterns),
//! Java (web-like applications and web servers), and DCE (business
//! application RPC) — with up to 300 processes each. Those traces are not
//! recoverable, so this crate generates deterministic synthetic equivalents
//! spanning the same structural axes (see DESIGN.md §1 for the substitution
//! argument):
//!
//! - [`spmd`]: stencils, rings, scatter-gather, reduction trees, pipelines,
//!   butterflies, and a Cowichan-style phased composite;
//! - [`web`]: acceptor/worker-pool web servers and tiered microservices;
//! - [`dce`]: synchronous-RPC three-tier business applications (heavy use of
//!   synchronous events) and an all-synchronous variant;
//! - [`synthetic`]: adversarial patterns — uniform random (no locality),
//!   planted clusters, hotspots, and hierarchies;
//! - [`drift`]: planted-drift families whose communication locality changes
//!   at known event positions (phase-changing SPMD re-blocking,
//!   re-balancing web tiers) — the fixtures for the online adaptive
//!   re-clustering work. Not part of the standard suite.
//!
//! [`suite::standard_suite`] packages 54 named computations with fixed seeds
//! as the stand-in for the paper's corpus.
//!
//! All generators are deterministic functions of their parameters and an
//! explicit seed: the in-repo ChaCha8 PRNG of `cts-util`, whose keystream is
//! pinned by known-answer tests (and the suite's first events by golden
//! tests), so the corpus is bit-reproducible across machines and refactors.

pub mod dce;
pub mod drift;
pub mod spmd;
pub mod suite;
pub mod synthetic;
pub mod web;

use cts_model::Trace;

/// A parameterized, seeded trace generator.
pub trait Workload {
    /// Stable descriptive name (used in reports and the suite).
    fn name(&self) -> String;
    /// Generate the trace for a seed. Equal parameters and seed always yield
    /// the identical trace.
    fn generate(&self, seed: u64) -> Trace;
}

pub(crate) fn rng(seed: u64) -> cts_util::prng::ChaCha8Rng {
    cts_util::prng::ChaCha8Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::stats::TraceStats;

    #[test]
    fn all_workload_kinds_are_deterministic() {
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(spmd::Stencil1D { procs: 8, iters: 3 }),
            Box::new(web::WebServer {
                clients: 4,
                workers: 3,
                requests: 10,
                affinity: 0.8,
            }),
            Box::new(dce::ThreeTier {
                clients: 3,
                servers: 2,
                databases: 1,
                transactions: 6,
            }),
            Box::new(synthetic::UniformRandom {
                procs: 10,
                messages: 30,
            }),
        ];
        for w in &workloads {
            let a = w.generate(42);
            let b = w.generate(42);
            assert_eq!(a.events(), b.events(), "{} not deterministic", w.name());
            let st = TraceStats::compute(&a);
            assert!(st.num_events > 0, "{} generated empty trace", w.name());
        }
    }
}
