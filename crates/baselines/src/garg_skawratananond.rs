//! Garg/Skawratananond timestamps for synchronous computations.
//!
//! For a computation whose every communication is synchronous, timestamps
//! over a **vertex cover** `C` of the process communication graph suffice:
//! every synchronous edge has at least one endpoint in `C`, so causal
//! information always flows through covered processes. The costs §2.4
//! highlights are reproduced faithfully:
//!
//! - the communication graph (and hence `C`) is rarely known a priori, so
//!   this is a *static* technique — [`GsStore::build`] takes the whole trace;
//! - it only applies to synchronous computations — [`GsStore::build`] rejects
//!   traces containing any asynchronous message;
//! - events on uncovered processes need *two* vectors' worth of space and
//!   cannot be finalized until the process's next synchronous event.
//!
//! Precedence for an event `e` on an uncovered process `p` routes through
//! `p`'s next synchronous event at or after `e`: its covered partner `g`
//! satisfies `e → f ⇔ f` is later on `p`, or `V(f)[proc(g)] ≥ idx(g)`.
//! (The *earliest* exit suffices: any causal path leaving `p` later is
//! dominated by it.)

use cts_model::comm::CommGraph;
use cts_model::{EventId, EventKind, ProcessId, Trace};

/// Why a trace cannot be GS-timestamped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GsError {
    /// The trace contains an asynchronous send/receive pair.
    NotSynchronous(EventId),
}

impl std::fmt::Display for GsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GsError::NotSynchronous(e) => {
                write!(
                    f,
                    "event {e} is asynchronous; GS needs a synchronous computation"
                )
            }
        }
    }
}

impl std::error::Error for GsError {}

/// Vertex-cover timestamps for a fully synchronous trace.
pub struct GsStore {
    /// The vertex cover, sorted by process id.
    cover: Vec<ProcessId>,
    /// cover position per process (usize::MAX if uncovered).
    cover_pos: Vec<usize>,
    /// Per event (delivery order): projection of its causal knowledge onto
    /// the cover.
    stamps: Vec<Box<[u32]>>,
    /// Per process: its sync events as `(own index, covered-partner process,
    /// partner index)`, in increasing own-index order.
    sync_exits: Vec<Vec<(u32, ProcessId, u32)>>,
}

impl GsStore {
    /// Build GS timestamps; fails on any asynchronous communication.
    pub fn build(trace: &Trace) -> Result<GsStore, GsError> {
        for ev in trace.events() {
            match ev.kind {
                EventKind::Send { .. } | EventKind::Receive { .. } => {
                    return Err(GsError::NotSynchronous(ev.id));
                }
                _ => {}
            }
        }
        let n = trace.num_processes() as usize;
        let graph = CommGraph::from_trace(trace);
        let mut cover = graph.vertex_cover_2approx();
        cover.sort_unstable();
        let mut cover_pos = vec![usize::MAX; n];
        for (i, &c) in cover.iter().enumerate() {
            cover_pos[c.idx()] = i;
        }

        // Compute per-event cover projections with a frontier engine (like
        // Fidge/Mattern restricted to cover components).
        let mut frontier: Vec<Vec<u32>> = vec![vec![0; cover.len()]; n];
        let mut pending: std::collections::HashMap<EventId, Vec<u32>> = Default::default();
        let mut stamps: Vec<Box<[u32]>> = Vec::with_capacity(trace.num_events());
        let mut sync_exits: Vec<Vec<(u32, ProcessId, u32)>> = vec![Vec::new(); n];
        for ev in trace.events() {
            let p = ev.process();
            let stamp: Vec<u32> = match ev.kind {
                EventKind::Internal => {
                    let mut s = frontier[p.idx()].clone();
                    if let Some(cp) = cover_slot(&cover_pos, p) {
                        s[cp] = ev.index().0;
                    }
                    s
                }
                EventKind::Sync { peer } => {
                    let q = peer.process;
                    // Record the exit for both halves (whichever endpoint is
                    // covered; for a covered process its own events carry its
                    // component so exits are only needed for uncovered ones).
                    let combined = if let Some(s) = pending.remove(&ev.id) {
                        s
                    } else {
                        let mut s = frontier[p.idx()].clone();
                        for (a, b) in s.iter_mut().zip(frontier[q.idx()].iter()) {
                            *a = (*a).max(*b);
                        }
                        if let Some(cp) = cover_slot(&cover_pos, p) {
                            s[cp] = ev.index().0;
                        }
                        if let Some(cq) = cover_slot(&cover_pos, q) {
                            s[cq] = peer.index.0;
                        }
                        pending.insert(peer, s.clone());
                        frontier[q.idx()] = s.clone();
                        s
                    };
                    // Exit bookkeeping: the covered endpoint anchors the pair.
                    if cover_pos[q.idx()] != usize::MAX {
                        sync_exits[p.idx()].push((ev.index().0, q, peer.index.0));
                    } else {
                        // Edge is covered, so p must be covered; anchor on p.
                        sync_exits[p.idx()].push((ev.index().0, p, ev.index().0));
                    }
                    combined
                }
                _ => unreachable!("asynchrony rejected above"),
            };
            frontier[p.idx()] = stamp.clone();
            stamps.push(stamp.into_boxed_slice());
        }
        Ok(GsStore {
            cover,
            cover_pos,
            stamps,
            sync_exits,
        })
    }

    /// The vertex cover in use.
    pub fn cover(&self) -> &[ProcessId] {
        &self.cover
    }

    /// Timestamp width (cover size) — the size bound of the GS scheme.
    pub fn width(&self) -> usize {
        self.cover.len()
    }

    /// Space accounting per §2.4: events on covered processes store one
    /// cover-width vector; events on uncovered processes store two.
    pub fn total_elements(&self, trace: &Trace) -> u64 {
        trace
            .events()
            .iter()
            .map(|ev| {
                if self.cover_pos[ev.process().idx()] != usize::MAX {
                    self.width() as u64
                } else {
                    2 * self.width() as u64
                }
            })
            .sum()
    }

    /// The earliest synchronous exit of process `p` at or after index `idx`:
    /// `(covered process, its event index)`.
    fn exit_at_or_after(&self, p: ProcessId, idx: u32) -> Option<(ProcessId, u32)> {
        let exits = &self.sync_exits[p.idx()];
        let i = exits.partition_point(|&(own, _, _)| own < idx);
        exits.get(i).map(|&(_, q, qi)| (q, qi))
    }

    /// Precedence test.
    pub fn precedes(&self, trace: &Trace, e: EventId, f: EventId) -> bool {
        if e == f {
            return false;
        }
        if e.process == f.process {
            return e.index < f.index;
        }
        let fs = &self.stamps[trace.delivery_pos(f)];
        if let Some(cp) = cover_slot(&self.cover_pos, e.process) {
            return fs[cp] >= e.index.0;
        }
        // Uncovered: route through the earliest synchronous exit.
        match self.exit_at_or_after(e.process, e.index.0) {
            Some((g_proc, g_idx)) => {
                let slot = cover_slot(&self.cover_pos, g_proc)
                    .expect("exit anchor is covered by construction");
                fs[slot] >= g_idx
            }
            None => false, // e never leaves its process again
        }
    }
}

#[inline]
fn cover_slot(cover_pos: &[usize], p: ProcessId) -> Option<usize> {
    let s = cover_pos[p.idx()];
    (s != usize::MAX).then_some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::{Oracle, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    /// A star of synchronous communication: centre 0, leaves 1..n.
    fn sync_star(leaves: u32, rounds: u32) -> Trace {
        let mut b = TraceBuilder::new(leaves + 1);
        for _ in 0..rounds {
            for l in 1..=leaves {
                b.sync(p(0), p(l)).unwrap();
                b.internal(p(l)).unwrap();
            }
        }
        b.finish_complete("sync-star").unwrap()
    }

    #[test]
    fn rejects_asynchronous_traces() {
        let mut b = TraceBuilder::new(2);
        let s = b.send(p(0), p(1)).unwrap();
        b.receive(p(1), s).unwrap();
        let t = b.finish_complete("async").unwrap();
        assert!(matches!(
            GsStore::build(&t),
            Err(GsError::NotSynchronous(_))
        ));
    }

    #[test]
    fn star_cover_is_tiny() {
        let t = sync_star(6, 2);
        let gs = GsStore::build(&t).unwrap();
        // A greedy 2-approx on a star picks the centre plus one leaf.
        assert!(gs.width() <= 2, "cover width {}", gs.width());
        // Timestamp width beats the 7-wide Fidge/Mattern vector.
        assert!(gs.width() < t.num_processes() as usize);
    }

    #[test]
    fn precedence_matches_oracle_star() {
        let t = sync_star(4, 3);
        let gs = GsStore::build(&t).unwrap();
        let o = Oracle::compute(&t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(
                    gs.precedes(&t, e, f),
                    o.happened_before(&t, e, f),
                    "{e} -> {f}"
                );
            }
        }
    }

    #[test]
    fn precedence_matches_oracle_chain() {
        // Synchronous chain 0-1-2-3 repeated: cover alternates.
        let mut b = TraceBuilder::new(4);
        for _ in 0..3 {
            b.sync(p(0), p(1)).unwrap();
            b.sync(p(1), p(2)).unwrap();
            b.sync(p(2), p(3)).unwrap();
            b.internal(p(3)).unwrap();
        }
        let t = b.finish_complete("sync-chain").unwrap();
        let gs = GsStore::build(&t).unwrap();
        let o = Oracle::compute(&t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(
                    gs.precedes(&t, e, f),
                    o.happened_before(&t, e, f),
                    "{e} -> {f}"
                );
            }
        }
    }

    #[test]
    fn uncovered_events_cost_double() {
        let t = sync_star(6, 1);
        let gs = GsStore::build(&t).unwrap();
        let covered: usize = t
            .events()
            .iter()
            .filter(|e| gs.cover().contains(&e.process()))
            .count();
        let uncovered = t.num_events() - covered;
        assert_eq!(
            gs.total_elements(&t),
            (covered * gs.width() + uncovered * 2 * gs.width()) as u64
        );
    }
}
