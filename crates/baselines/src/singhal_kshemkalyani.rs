//! Singhal/Kshemkalyani-style differential encoding.
//!
//! The original technique transmits only the vector entries that changed
//! since the previous communication between two processes. The paper notes
//! it is "not directly applicable in our context", but that a differential
//! technique can be used *between events within the partial-order data
//! structure* — and that doing so saved no more than a factor of three.
//!
//! This module implements exactly that: each process's events store only the
//! `(component, new_value)` pairs by which their Fidge/Mattern stamp differs
//! from the previous event of the same process, with periodic full
//! checkpoints so a stamp can be reconstructed in bounded time. Precedence
//! testing reconstructs the needed stamp (or reads the needed component while
//! replaying), so its cost is proportional to the distance from the last
//! checkpoint — the recompute trade-off the paper describes for POET/OLT.

use cts_core::fm::FmEngine;
use cts_model::{EventId, Trace};

/// A stored event record: either a checkpoint (full stamp) or a diff against
/// the previous event of the same process.
enum Record {
    Checkpoint(Box<[u32]>),
    Diff(Box<[(u32, u32)]>),
}

/// Differentially encoded Fidge/Mattern stamps for a whole trace.
pub struct DiffStore {
    n: usize,
    /// Records in delivery order.
    records: Vec<Record>,
    /// Per process: delivery positions of its events, in order (needed to
    /// replay diffs within a process).
    per_process: Vec<Vec<u32>>,
    /// Every `checkpoint_every`-th event of a process is a checkpoint.
    checkpoint_every: usize,
}

impl DiffStore {
    /// Encode a trace, checkpointing every `checkpoint_every` events per
    /// process (the first event of each process is always a checkpoint).
    pub fn compute(trace: &Trace, checkpoint_every: usize) -> DiffStore {
        assert!(checkpoint_every >= 1);
        let n = trace.num_processes() as usize;
        let mut engine = FmEngine::new(trace.num_processes());
        let mut last: Vec<Option<Vec<u32>>> = vec![None; n];
        let mut records = Vec::with_capacity(trace.num_events());
        let mut per_process: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (pos, &ev) in trace.events().iter().enumerate() {
            let stamp = engine.accept(ev);
            let p = ev.process().idx();
            let is_checkpoint =
                per_process[p].len().is_multiple_of(checkpoint_every) || last[p].is_none();
            per_process[p].push(pos as u32);
            if is_checkpoint {
                records.push(Record::Checkpoint(stamp.as_slice().into()));
            } else {
                let prev = last[p].as_ref().expect("non-first event has a predecessor");
                let diff: Box<[(u32, u32)]> = stamp
                    .as_slice()
                    .iter()
                    .enumerate()
                    .filter(|&(i, &v)| v != prev[i])
                    .map(|(i, &v)| (i as u32, v))
                    .collect();
                records.push(Record::Diff(diff));
            }
            last[p] = Some(stamp.as_slice().to_vec());
        }
        DiffStore {
            n,
            records,
            per_process,
            checkpoint_every,
        }
    }

    /// Reconstruct the full stamp of an event by replaying diffs from the
    /// nearest checkpoint at or before it. Returns the stamp and the number
    /// of records touched (the reconstruction cost).
    pub fn reconstruct(&self, trace: &Trace, id: EventId) -> (Vec<u32>, usize) {
        let p = id.process.idx();
        let k = id.index.zero_based();
        // Nearest checkpoint at or before position k within the process.
        let ck = k - (k % self.checkpoint_every);
        let mut stamp = match &self.records[self.per_process[p][ck] as usize] {
            Record::Checkpoint(s) => s.to_vec(),
            Record::Diff(_) => unreachable!("checkpoint schedule violated"),
        };
        let mut touched = 1;
        for &pos in &self.per_process[p][ck + 1..=k] {
            touched += 1;
            match &self.records[pos as usize] {
                Record::Diff(d) => {
                    for &(i, v) in d.iter() {
                        stamp[i as usize] = v;
                    }
                }
                Record::Checkpoint(s) => stamp.copy_from_slice(s),
            }
        }
        debug_assert_eq!(stamp.len(), self.n);
        let _ = trace;
        (stamp, touched)
    }

    /// Precedence via reconstruction: `e → f ⇔ e ≠ f ∧ FM(f)[p_e] ≥ idx(e)`.
    pub fn precedes(&self, trace: &Trace, e: EventId, f: EventId) -> bool {
        if e == f {
            return false;
        }
        if e.process == f.process {
            return e.index < f.index;
        }
        let (stamp, _) = self.reconstruct(trace, f);
        stamp[e.process.idx()] >= e.index.0
    }

    /// Total stored elements: full width for checkpoints, two elements per
    /// diff entry.
    pub fn total_elements(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                Record::Checkpoint(s) => s.len() as u64,
                Record::Diff(d) => 2 * d.len() as u64,
            })
            .sum()
    }

    /// Space ratio versus storing every stamp at full width.
    pub fn ratio_vs_full(&self) -> f64 {
        let full = (self.records.len() * self.n) as u64;
        if full == 0 {
            0.0
        } else {
            self.total_elements() as f64 / full as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_core::fm::FmStore;
    use cts_model::{Oracle, ProcessId, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn busy_trace() -> Trace {
        let mut b = TraceBuilder::new(5);
        for round in 0..6u32 {
            for i in 0..5u32 {
                let q = (i + 1 + round % 3) % 5;
                if q != i {
                    let s = b.send(p(i), p(q)).unwrap();
                    b.receive(p(q), s).unwrap();
                }
            }
            b.internal(p(round % 5)).unwrap();
        }
        b.finish_complete("busy").unwrap()
    }

    #[test]
    fn reconstruction_matches_fm() {
        let t = busy_trace();
        let fm = FmStore::compute(&t);
        for ck in [1, 2, 4, 16] {
            let d = DiffStore::compute(&t, ck);
            for id in t.all_event_ids() {
                let (stamp, _) = d.reconstruct(&t, id);
                assert_eq!(&stamp[..], fm.stamp(&t, id), "ck={ck} event {id}");
            }
        }
    }

    #[test]
    fn precedence_matches_oracle() {
        let t = busy_trace();
        let d = DiffStore::compute(&t, 8);
        let o = Oracle::compute(&t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(d.precedes(&t, e, f), o.happened_before(&t, e, f));
            }
        }
    }

    #[test]
    fn diffs_save_space_on_low_degree_traffic() {
        // Each event changes at most 2 components, so diffs are tiny.
        let t = busy_trace();
        let d = DiffStore::compute(&t, 16);
        assert!(d.ratio_vs_full() < 1.0);
        assert!(d.total_elements() > 0);
    }

    #[test]
    fn reconstruction_cost_bounded_by_checkpoint_interval() {
        let t = busy_trace();
        let d = DiffStore::compute(&t, 4);
        for id in t.all_event_ids() {
            let (_, touched) = d.reconstruct(&t, id);
            assert!(touched <= 4, "touched {touched} > interval");
        }
    }

    #[test]
    fn checkpoint_every_one_is_plain_storage() {
        let t = busy_trace();
        let d = DiffStore::compute(&t, 1);
        assert_eq!(
            d.total_elements(),
            (t.num_events() * t.num_processes() as usize) as u64
        );
        assert!((d.ratio_vs_full() - 1.0).abs() < 1e-12);
    }
}
