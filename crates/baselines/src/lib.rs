//! # cts-baselines — related-work timestamp schemes (§2.4)
//!
//! The paper positions cluster timestamps against alternative approaches to
//! the vector-timestamp-size problem; three are implemented here, from
//! scratch, so the experiments can reproduce the paper's comparative claims:
//!
//! - [`fowler_zwaenepoel`]: direct-dependency vectors. "Substantially smaller
//!   than Fidge/Mattern timestamps", but "precedence testing requires a
//!   search through the vector space, which is in the worst case linear in
//!   the number of messages."
//! - [`singhal_kshemkalyani`]: differential encoding between successive
//!   events of a process. The paper reports "we were unable to realize more
//!   than a factor of three in space saving" with this class of technique.
//! - [`garg_skawratananond`]: timestamps for *synchronous* computations with
//!   size equal to a vertex cover of the communication graph; unary events
//!   need twice the size and cannot be finalized until the process's next
//!   synchronous event — the reasons §2.4 gives for not comparing against it
//!   directly.
//!
//! Every scheme's precedence test is exact and property-tested against the
//! ground-truth oracle.

pub mod fowler_zwaenepoel;
pub mod garg_skawratananond;
pub mod singhal_kshemkalyani;

pub use fowler_zwaenepoel::DdvStore;
pub use garg_skawratananond::GsStore;
pub use singhal_kshemkalyani::DiffStore;
