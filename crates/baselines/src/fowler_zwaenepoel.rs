//! Fowler/Zwaenepoel direct-dependency vectors.
//!
//! Each event records only its *direct* dependencies: for every process `q`,
//! the greatest event index of `q` from which the event's process has
//! directly received (plus the event's own index). Stored sparsely, these
//! vectors are much smaller than Fidge/Mattern stamps; the price is that
//! causality is the *transitive closure* of direct dependency, so a
//! precedence test must search — in the worst case touching a chain of
//! dependency vectors linear in the number of messages (§2.4).

use cts_model::{EventId, EventIndex, ProcessId, Trace};

/// A sparse direct-dependency vector: `(process, greatest directly-received
/// event index)` pairs, sorted by process id. The own-process component is
/// implicit (it is the event's own index).
type SparseDdv = Box<[(ProcessId, u32)]>;

/// Direct-dependency vectors for every event of a trace, plus a search-based
/// precedence test.
pub struct DdvStore {
    n: usize,
    /// Per delivery position.
    ddvs: Vec<SparseDdv>,
    /// Query-cost instrumentation: dependency vectors visited by the last
    /// `precedes` call.
    last_visited: std::cell::Cell<usize>,
}

impl DdvStore {
    /// Compute direct-dependency vectors for a trace.
    pub fn compute(trace: &Trace) -> DdvStore {
        let n = trace.num_processes() as usize;
        // Running direct-dependency state per process (dense while building).
        let mut state: Vec<Vec<u32>> = vec![vec![0; n]; n];
        let mut ddvs = Vec::with_capacity(trace.num_events());
        for ev in trace.events() {
            let p = ev.process().idx();
            if let Some(src) = ev.kind.receive_source() {
                let s = &mut state[p][src.process.idx()];
                *s = (*s).max(src.index.0);
            }
            let sparse: SparseDdv = state[p]
                .iter()
                .enumerate()
                .filter(|&(q, &idx)| idx > 0 && q != p)
                .map(|(q, &idx)| (ProcessId(q as u32), idx))
                .collect();
            ddvs.push(sparse);
        }
        DdvStore {
            n,
            ddvs,
            last_visited: std::cell::Cell::new(0),
        }
    }

    /// The sparse direct-dependency vector of an event.
    pub fn ddv(&self, trace: &Trace, id: EventId) -> &[(ProcessId, u32)] {
        &self.ddvs[trace.delivery_pos(id)]
    }

    /// Total stored elements (2 per sparse entry + 1 own component per
    /// event), for space comparison against Fidge/Mattern.
    pub fn total_elements(&self) -> u64 {
        self.ddvs.iter().map(|d| 2 * d.len() as u64 + 1).sum()
    }

    /// Mean stored elements per event.
    pub fn avg_elements(&self) -> f64 {
        if self.ddvs.is_empty() {
            0.0
        } else {
            self.total_elements() as f64 / self.ddvs.len() as f64
        }
    }

    /// Number of dependency vectors visited by the most recent
    /// [`precedes`](Self::precedes) call — the search cost the paper
    /// criticizes.
    pub fn last_query_cost(&self) -> usize {
        self.last_visited.get()
    }

    /// Search-based precedence test: `e → f`?
    ///
    /// Breadth of the search is bounded by tracking, per process, the
    /// greatest event index already expanded; total work is O(messages) in
    /// the worst case.
    pub fn precedes(&self, trace: &Trace, e: EventId, f: EventId) -> bool {
        if e == f {
            return false;
        }
        if e.process == f.process {
            return e.index < f.index;
        }
        let mut visited = 0usize;
        // Greatest index of each process already expanded (or queued).
        let mut expanded = vec![0u32; self.n];
        let mut stack: Vec<EventId> = vec![f];
        expanded[f.process.idx()] = f.index.0;
        let mut found = false;
        while let Some(g) = stack.pop() {
            visited += 1;
            // Within g's process, everything up to g is in g's past; direct
            // dependencies of *earlier* events on the same process are
            // reflected in g's vector already (state is cumulative).
            for &(q, idx) in self.ddvs[trace.delivery_pos(g)].iter() {
                if q == e.process && idx >= e.index.0 {
                    found = true;
                    break;
                }
                if idx > expanded[q.idx()] {
                    expanded[q.idx()] = idx;
                    stack.push(EventId::new(q, EventIndex(idx)));
                }
            }
            if found {
                break;
            }
        }
        self.last_visited.set(visited);
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::{Oracle, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn chain(hops: u32) -> Trace {
        let mut b = TraceBuilder::new(hops + 1);
        for h in 0..hops {
            let s = b.send(p(h), p(h + 1)).unwrap();
            b.receive(p(h + 1), s).unwrap();
        }
        b.finish_complete("chain").unwrap()
    }

    #[test]
    fn transitive_dependency_needs_search() {
        let t = chain(4);
        let d = DdvStore::compute(&t);
        let first = EventId::new(p(0), EventIndex(1));
        let last = t.events().last().unwrap().id;
        assert!(d.precedes(&t, first, last));
        // The chain forces the search through every hop.
        assert!(d.last_query_cost() >= 3);
        // A direct dependency is found immediately.
        let second = EventId::new(p(1), EventIndex(1));
        assert!(d.precedes(&t, first, second));
        assert_eq!(d.last_query_cost(), 1);
    }

    #[test]
    fn matches_oracle_on_mixed_trace() {
        let mut b = TraceBuilder::new(4);
        let s1 = b.send(p(0), p(1)).unwrap();
        b.receive(p(1), s1).unwrap();
        b.sync(p(1), p(2)).unwrap();
        let s2 = b.send(p(2), p(3)).unwrap();
        b.internal(p(0)).unwrap();
        b.receive(p(3), s2).unwrap();
        let s3 = b.send(p(3), p(0)).unwrap();
        b.receive(p(0), s3).unwrap();
        let t = b.finish_complete("mixed").unwrap();
        let d = DdvStore::compute(&t);
        let o = Oracle::compute(&t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(
                    d.precedes(&t, e, f),
                    o.happened_before(&t, e, f),
                    "{e} -> {f}"
                );
            }
        }
    }

    #[test]
    fn vectors_are_much_smaller_than_fm() {
        // A 1-D stencil over many processes: direct deps are just the two
        // neighbours, so ~5 elements/event versus N for Fidge/Mattern.
        let mut b = TraceBuilder::new(20);
        for _ in 0..3 {
            let mut toks = Vec::new();
            for i in 0..20u32 {
                if i > 0 {
                    toks.push((i - 1, b.send(p(i), p(i - 1)).unwrap()));
                }
                if i < 19 {
                    toks.push((i + 1, b.send(p(i), p(i + 1)).unwrap()));
                }
            }
            for (dst, tok) in toks {
                b.receive(p(dst), tok).unwrap();
            }
        }
        let t = b.finish_complete("stencil").unwrap();
        let d = DdvStore::compute(&t);
        assert!(d.avg_elements() < 6.0);
        let o = Oracle::compute(&t);
        for e in t.all_event_ids().step_by(7) {
            for f in t.all_event_ids().step_by(5) {
                assert_eq!(d.precedes(&t, e, f), o.happened_before(&t, e, f));
            }
        }
    }

    #[test]
    fn sync_halves_are_mutual() {
        let mut b = TraceBuilder::new(2);
        let (x, y) = b.sync(p(0), p(1)).unwrap();
        let t = b.finish("s");
        let d = DdvStore::compute(&t);
        assert!(d.precedes(&t, x, y));
        assert!(d.precedes(&t, y, x));
    }
}
