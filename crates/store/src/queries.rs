//! Higher-level queries a visualization system issues against the store:
//! precedence, greatest-concurrent-elements, and partial-order scrolling.
//!
//! All queries are generic over a [`PrecedenceBackend`], so the same query
//! code runs against precomputed Fidge/Mattern stamps, cluster timestamps,
//! the recompute-forward cache, or the paged-memory simulator — which is how
//! the experiments compare their costs.

use cts_core::cluster::ClusterTimestamps;
use cts_core::fm::FmStore;
use cts_model::{EventId, EventIndex, ProcessId, Trace};

/// Anything that can answer `e → f`.
pub trait PrecedenceBackend {
    /// Does `e` happen before `f`?
    fn precedes(&mut self, trace: &Trace, e: EventId, f: EventId) -> bool;

    /// Are `e` and `f` concurrent?
    fn concurrent(&mut self, trace: &Trace, e: EventId, f: EventId) -> bool {
        e != f && !self.precedes(trace, e, f) && !self.precedes(trace, f, e)
    }
}

/// Backend over precomputed Fidge/Mattern stamps.
pub struct FmBackend<'a>(pub &'a FmStore);

impl PrecedenceBackend for FmBackend<'_> {
    fn precedes(&mut self, trace: &Trace, e: EventId, f: EventId) -> bool {
        self.0.precedes(trace, e, f)
    }
}

/// Backend over cluster timestamps.
pub struct ClusterBackend<'a>(pub &'a ClusterTimestamps);

impl PrecedenceBackend for ClusterBackend<'_> {
    fn precedes(&mut self, trace: &Trace, e: EventId, f: EventId) -> bool {
        self.0.precedes(trace, e, f)
    }
}

impl PrecedenceBackend for crate::timestamp_cache::TimestampCache<'_> {
    fn precedes(&mut self, _trace: &Trace, e: EventId, f: EventId) -> bool {
        crate::timestamp_cache::TimestampCache::precedes(self, e, f)
    }
}

impl PrecedenceBackend for crate::vm_sim::PagedTimestampStore<'_> {
    fn precedes(&mut self, _trace: &Trace, e: EventId, f: EventId) -> bool {
        crate::vm_sim::PagedTimestampStore::precedes(self, e, f)
    }
}

/// For each other process, the greatest event concurrent with `e` — the
/// "greatest-concurrent elements" computation of Ward's thesis, used in §1.1
/// to illustrate virtual-memory thrashing.
///
/// Implementation mirrors what a tool does with only precedence tests
/// available: scan each process's events backwards from the end, skipping
/// events that causally follow `e`, until one concurrent with `e` is found
/// (events of one process preceding `e` are a prefix, so the first
/// non-follower that isn't a predecessor is the greatest concurrent one).
pub fn greatest_concurrent<B: PrecedenceBackend>(
    backend: &mut B,
    trace: &Trace,
    e: EventId,
) -> Vec<Option<EventId>> {
    let mut out = Vec::with_capacity(trace.num_processes() as usize);
    for q in 0..trace.num_processes() {
        let q = ProcessId(q);
        if q == e.process {
            out.push(None);
            continue;
        }
        let len = trace.process_len(q) as u32;
        let mut found = None;
        let mut i = len;
        while i >= 1 {
            let cand = EventId::new(q, EventIndex(i));
            if !backend.precedes(trace, e, cand) {
                // First event (from the top) not in e's future; concurrent
                // unless it precedes e.
                if !backend.precedes(trace, cand, e) {
                    found = Some(cand);
                }
                break;
            }
            i -= 1;
        }
        out.push(found);
    }
    out
}

/// Partial-order scrolling: the tool renders a window of `width` events per
/// process starting at index `from`, and must determine the pairwise ordering
/// of everything visible to draw arrows. Returns the number of ordered pairs
/// found (and, as a side effect, drives `width² · N²`-ish precedence load
/// through the backend).
pub fn scroll_window<B: PrecedenceBackend>(
    backend: &mut B,
    trace: &Trace,
    from: u32,
    width: u32,
) -> usize {
    let mut visible = Vec::new();
    for q in 0..trace.num_processes() {
        let q = ProcessId(q);
        let len = trace.process_len(q) as u32;
        for i in from..(from + width).min(len + 1) {
            if i >= 1 {
                visible.push(EventId::new(q, EventIndex(i)));
            }
        }
    }
    let mut ordered = 0;
    for &a in &visible {
        for &b in &visible {
            if a != b && backend.precedes(trace, a, b) {
                ordered += 1;
            }
        }
    }
    ordered
}

/// As [`scroll_window`] but only every `stride`-th visible event enters the
/// pairwise phase — for large-N cost measurements where the full quadratic
/// pass is unnecessary (the paging behaviour per query is what matters).
pub fn scroll_window_sampled<B: PrecedenceBackend>(
    backend: &mut B,
    trace: &Trace,
    from: u32,
    width: u32,
    stride: usize,
) -> usize {
    assert!(stride >= 1);
    let mut visible = Vec::new();
    for q in 0..trace.num_processes() {
        let q = ProcessId(q);
        let len = trace.process_len(q) as u32;
        for i in from..(from + width).min(len + 1) {
            if i >= 1 {
                visible.push(EventId::new(q, EventIndex(i)));
            }
        }
    }
    let sampled: Vec<EventId> = visible.into_iter().step_by(stride).collect();
    let mut ordered = 0;
    for &a in &sampled {
        for &b in &sampled {
            if a != b && backend.precedes(trace, a, b) {
                ordered += 1;
            }
        }
    }
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_core::strategy::MergeOnFirst;
    use cts_core::ClusterEngine;
    use cts_model::{Oracle, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn id(pr: u32, i: u32) -> EventId {
        EventId::new(p(pr), EventIndex(i))
    }

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(3);
        let s = b.send(p(0), p(1)).unwrap();
        b.internal(p(0)).unwrap();
        b.receive(p(1), s).unwrap();
        b.internal(p(1)).unwrap();
        b.internal(p(2)).unwrap();
        let s2 = b.send(p(1), p(2)).unwrap();
        b.receive(p(2), s2).unwrap();
        b.finish_complete("q").unwrap()
    }

    #[test]
    fn greatest_concurrent_against_oracle() {
        let t = sample();
        let fm = FmStore::compute(&t);
        let o = Oracle::compute(&t);
        let e = id(1, 2); // receive on P1
        let gc = greatest_concurrent(&mut FmBackend(&fm), &t, e);
        // Verify each reported element really is concurrent and maximal.
        for (qi, slot) in gc.iter().enumerate() {
            let q = p(qi as u32);
            if q == e.process {
                assert!(slot.is_none());
                continue;
            }
            if let Some(c) = slot {
                assert!(o.concurrent(&t, e, *c), "{c} not concurrent with {e}");
                // Nothing later on q is concurrent.
                for later in (c.index.0 + 1)..=(t.process_len(q) as u32) {
                    assert!(!o.concurrent(&t, e, id(q.0, later)));
                }
            } else {
                for i in 1..=(t.process_len(q) as u32) {
                    assert!(!o.concurrent(&t, e, id(q.0, i)));
                }
            }
        }
    }

    #[test]
    fn all_backends_agree_on_queries() {
        let t = sample();
        let fm = FmStore::compute(&t);
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(2));
        let mut cache = crate::timestamp_cache::TimestampCache::new(&t, 8);
        let mut paged = crate::vm_sim::PagedTimestampStore::new(&t, &fm, 64);
        for e in t.all_event_ids() {
            let a = greatest_concurrent(&mut FmBackend(&fm), &t, e);
            let b = greatest_concurrent(&mut ClusterBackend(&cts), &t, e);
            let c = greatest_concurrent(&mut cache, &t, e);
            let d = greatest_concurrent(&mut paged, &t, e);
            assert_eq!(a, b, "cluster backend diverged at {e}");
            assert_eq!(a, c, "cache backend diverged at {e}");
            assert_eq!(a, d, "paged backend diverged at {e}");
        }
    }

    #[test]
    fn scroll_counts_ordered_pairs() {
        let t = sample();
        let fm = FmStore::compute(&t);
        let full = scroll_window(&mut FmBackend(&fm), &t, 1, 10);
        // Count ordered pairs via the oracle.
        let o = Oracle::compute(&t);
        let mut expect = 0;
        for a in t.all_event_ids() {
            for b in t.all_event_ids() {
                if a != b && o.happened_before(&t, a, b) {
                    expect += 1;
                }
            }
        }
        assert_eq!(full, expect);
        // A narrow window sees fewer pairs.
        let narrow = scroll_window(&mut FmBackend(&fm), &t, 1, 1);
        assert!(narrow < full);
    }
}
