//! Higher-level queries a visualization system issues against the store:
//! precedence, greatest-concurrent-elements, and partial-order scrolling.
//!
//! All queries are generic over a [`PrecedenceBackend`], so the same query
//! code runs against precomputed Fidge/Mattern stamps, cluster timestamps,
//! the recompute-forward cache, or the paged-memory simulator — which is how
//! the experiments compare their costs.

use cts_core::cluster::ClusterTimestamps;
use cts_core::fm::FmStore;
use cts_core::VectorClock;
use cts_model::{EventId, EventIndex, ProcessId, Trace};

/// Anything that can answer `e → f`.
pub trait PrecedenceBackend {
    /// Does `e` happen before `f`?
    fn precedes(&mut self, trace: &Trace, e: EventId, f: EventId) -> bool;

    /// Are `e` and `f` concurrent?
    fn concurrent(&mut self, trace: &Trace, e: EventId, f: EventId) -> bool {
        e != f && !self.precedes(trace, e, f) && !self.precedes(trace, f, e)
    }

    /// The full Fidge/Mattern clock of `e`, if this backend can produce
    /// one cheaply. Component `q` is the length of `q`'s prefix of events
    /// preceding `e`, which hands [`greatest_concurrent`] the predecessor
    /// boundary for free — only the follower boundary must be searched.
    fn predecessor_clock(&mut self, trace: &Trace, e: EventId) -> Option<VectorClock> {
        let _ = (trace, e);
        None
    }
}

/// Backend over precomputed Fidge/Mattern stamps.
pub struct FmBackend<'a>(pub &'a FmStore);

impl PrecedenceBackend for FmBackend<'_> {
    fn precedes(&mut self, trace: &Trace, e: EventId, f: EventId) -> bool {
        self.0.precedes(trace, e, f)
    }

    fn predecessor_clock(&mut self, trace: &Trace, e: EventId) -> Option<VectorClock> {
        Some(VectorClock::from_vec(self.0.stamp(trace, e).to_vec()))
    }
}

/// Backend over cluster timestamps.
pub struct ClusterBackend<'a>(pub &'a ClusterTimestamps);

impl PrecedenceBackend for ClusterBackend<'_> {
    fn precedes(&mut self, trace: &Trace, e: EventId, f: EventId) -> bool {
        self.0.precedes(trace, e, f)
    }

    fn predecessor_clock(&mut self, trace: &Trace, e: EventId) -> Option<VectorClock> {
        Some(self.0.materialized_clock(trace, e))
    }
}

impl PrecedenceBackend for crate::timestamp_cache::TimestampCache<'_> {
    fn precedes(&mut self, _trace: &Trace, e: EventId, f: EventId) -> bool {
        crate::timestamp_cache::TimestampCache::precedes(self, e, f)
    }
}

impl PrecedenceBackend for crate::vm_sim::PagedTimestampStore<'_> {
    fn precedes(&mut self, _trace: &Trace, e: EventId, f: EventId) -> bool {
        crate::vm_sim::PagedTimestampStore::precedes(self, e, f)
    }
}

/// For each other process, the greatest event concurrent with `e` — the
/// "greatest-concurrent elements" computation of Ward's thesis, used in §1.1
/// to illustrate virtual-memory thrashing.
///
/// Along each process line `q`, the events preceding `e` form a prefix
/// `[1, a]` (where `a` is component `q` of `e`'s Fidge/Mattern clock) and
/// the events following `e` form a suffix `[b, len]`; everything strictly
/// between is concurrent with `e`. When the backend supplies `e`'s clock
/// via [`PrecedenceBackend::predecessor_clock`], `a` is known up front and
/// `b` is found by binary search over the monotone `e → E(q, ·)` predicate:
/// at most ⌈log₂ k⌉ + 1 precedence tests per process instead of O(k). The
/// greatest concurrent element is `E(q, b − 1)` unless the prefix and
/// suffix are adjacent. Backends without a clock fall back to the linear
/// scan, [`greatest_concurrent_linear`].
pub fn greatest_concurrent<B: PrecedenceBackend>(
    backend: &mut B,
    trace: &Trace,
    e: EventId,
) -> Vec<Option<EventId>> {
    let clock = match backend.predecessor_clock(trace, e) {
        Some(c) => c,
        None => return greatest_concurrent_linear(backend, trace, e),
    };
    let mut out = Vec::with_capacity(trace.num_processes() as usize);
    for q in 0..trace.num_processes() {
        let q = ProcessId(q);
        if q == e.process {
            out.push(None);
            continue;
        }
        let len = trace.process_len(q) as u32;
        let a = clock.get(q);
        // First follower of `e` on `q`, in (a, len]; `len + 1` if none.
        let mut lo = a + 1;
        let mut hi = len + 1;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if backend.precedes(trace, e, EventId::new(q, EventIndex(mid))) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let b = lo;
        out.push(if b > a + 1 {
            Some(EventId::new(q, EventIndex(b - 1)))
        } else {
            None
        });
    }
    out
}

/// The linear-scan greatest-concurrent computation: walk each process's
/// events backwards from the end, skipping events that causally follow
/// `e`, until one concurrent with `e` is found (events of one process
/// preceding `e` are a prefix, so the first non-follower that isn't a
/// predecessor is the greatest concurrent one). O(k) precedence tests per
/// process — kept as the oracle the binary-search path is validated
/// against, and as the fallback for backends without a predecessor clock.
pub fn greatest_concurrent_linear<B: PrecedenceBackend>(
    backend: &mut B,
    trace: &Trace,
    e: EventId,
) -> Vec<Option<EventId>> {
    let mut out = Vec::with_capacity(trace.num_processes() as usize);
    for q in 0..trace.num_processes() {
        let q = ProcessId(q);
        if q == e.process {
            out.push(None);
            continue;
        }
        let len = trace.process_len(q) as u32;
        let mut found = None;
        let mut i = len;
        while i >= 1 {
            let cand = EventId::new(q, EventIndex(i));
            if !backend.precedes(trace, e, cand) {
                // First event (from the top) not in e's future; concurrent
                // unless it precedes e.
                if !backend.precedes(trace, cand, e) {
                    found = Some(cand);
                }
                break;
            }
            i -= 1;
        }
        out.push(found);
    }
    out
}

/// Partial-order scrolling: the tool renders a window of `width` events per
/// process starting at index `from`, and must determine the pairwise ordering
/// of everything visible to draw arrows. Returns the number of ordered pairs
/// found (and, as a side effect, drives `width² · N²`-ish precedence load
/// through the backend).
pub fn scroll_window<B: PrecedenceBackend>(
    backend: &mut B,
    trace: &Trace,
    from: u32,
    width: u32,
) -> usize {
    let mut visible = Vec::new();
    for q in 0..trace.num_processes() {
        let q = ProcessId(q);
        let len = trace.process_len(q) as u32;
        for i in from..(from + width).min(len + 1) {
            if i >= 1 {
                visible.push(EventId::new(q, EventIndex(i)));
            }
        }
    }
    let mut ordered = 0;
    for &a in &visible {
        for &b in &visible {
            if a != b && backend.precedes(trace, a, b) {
                ordered += 1;
            }
        }
    }
    ordered
}

/// As [`scroll_window`] but only every `stride`-th visible event enters the
/// pairwise phase — for large-N cost measurements where the full quadratic
/// pass is unnecessary (the paging behaviour per query is what matters).
pub fn scroll_window_sampled<B: PrecedenceBackend>(
    backend: &mut B,
    trace: &Trace,
    from: u32,
    width: u32,
    stride: usize,
) -> usize {
    assert!(stride >= 1);
    let mut visible = Vec::new();
    for q in 0..trace.num_processes() {
        let q = ProcessId(q);
        let len = trace.process_len(q) as u32;
        for i in from..(from + width).min(len + 1) {
            if i >= 1 {
                visible.push(EventId::new(q, EventIndex(i)));
            }
        }
    }
    let sampled: Vec<EventId> = visible.into_iter().step_by(stride).collect();
    let mut ordered = 0;
    for &a in &sampled {
        for &b in &sampled {
            if a != b && backend.precedes(trace, a, b) {
                ordered += 1;
            }
        }
    }
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_core::strategy::MergeOnFirst;
    use cts_core::ClusterEngine;
    use cts_model::{Oracle, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn id(pr: u32, i: u32) -> EventId {
        EventId::new(p(pr), EventIndex(i))
    }

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(3);
        let s = b.send(p(0), p(1)).unwrap();
        b.internal(p(0)).unwrap();
        b.receive(p(1), s).unwrap();
        b.internal(p(1)).unwrap();
        b.internal(p(2)).unwrap();
        let s2 = b.send(p(1), p(2)).unwrap();
        b.receive(p(2), s2).unwrap();
        b.finish_complete("q").unwrap()
    }

    #[test]
    fn greatest_concurrent_against_oracle() {
        let t = sample();
        let fm = FmStore::compute(&t);
        let o = Oracle::compute(&t);
        let e = id(1, 2); // receive on P1
        let gc = greatest_concurrent(&mut FmBackend(&fm), &t, e);
        // Verify each reported element really is concurrent and maximal.
        for (qi, slot) in gc.iter().enumerate() {
            let q = p(qi as u32);
            if q == e.process {
                assert!(slot.is_none());
                continue;
            }
            if let Some(c) = slot {
                assert!(o.concurrent(&t, e, *c), "{c} not concurrent with {e}");
                // Nothing later on q is concurrent.
                for later in (c.index.0 + 1)..=(t.process_len(q) as u32) {
                    assert!(!o.concurrent(&t, e, id(q.0, later)));
                }
            } else {
                for i in 1..=(t.process_len(q) as u32) {
                    assert!(!o.concurrent(&t, e, id(q.0, i)));
                }
            }
        }
    }

    /// 6 processes, ~30 events each: ring sends, stride-2 cross traffic,
    /// and internal padding so prefix/suffix boundaries land everywhere.
    fn wide_sample() -> Trace {
        let mut b = TraceBuilder::new(6);
        for round in 0..8u32 {
            for i in 0..6u32 {
                b.internal(p(i)).unwrap();
                let s = b.send(p(i), p((i + 1) % 6)).unwrap();
                b.receive(p((i + 1) % 6), s).unwrap();
            }
            if round % 2 == 1 {
                for i in 0..3u32 {
                    let s = b.send(p(i), p(i + 3)).unwrap();
                    b.receive(p(i + 3), s).unwrap();
                }
            }
        }
        b.finish_complete("wide").unwrap()
    }

    /// Wraps a backend and counts precedence probes by candidate process.
    struct CountingBackend<B> {
        inner: B,
        probes: std::collections::HashMap<ProcessId, usize>,
    }

    impl<B: PrecedenceBackend> PrecedenceBackend for CountingBackend<B> {
        fn precedes(&mut self, trace: &Trace, e: EventId, f: EventId) -> bool {
            *self.probes.entry(f.process).or_insert(0) += 1;
            self.inner.precedes(trace, e, f)
        }

        fn predecessor_clock(&mut self, trace: &Trace, e: EventId) -> Option<VectorClock> {
            self.inner.predecessor_clock(trace, e)
        }
    }

    #[test]
    fn binary_search_matches_linear_oracle() {
        for t in [sample(), wide_sample()] {
            let fm = FmStore::compute(&t);
            let cts = ClusterEngine::run(&t, MergeOnFirst::new(3));
            for e in t.all_event_ids() {
                let oracle = greatest_concurrent_linear(&mut FmBackend(&fm), &t, e);
                assert_eq!(
                    greatest_concurrent(&mut FmBackend(&fm), &t, e),
                    oracle,
                    "fm binary search diverged at {e}"
                );
                assert_eq!(
                    greatest_concurrent(&mut ClusterBackend(&cts), &t, e),
                    oracle,
                    "cluster binary search diverged at {e}"
                );
            }
        }
    }

    #[test]
    fn binary_search_probe_bound() {
        let t = wide_sample();
        let fm = FmStore::compute(&t);
        for e in t.all_event_ids() {
            let mut counting = CountingBackend {
                inner: FmBackend(&fm),
                probes: Default::default(),
            };
            greatest_concurrent(&mut counting, &t, e);
            for (q, &n) in &counting.probes {
                let k = t.process_len(*q) as f64;
                let bound = k.log2().ceil() as usize + 1;
                assert!(
                    n <= bound,
                    "{n} probes on {q:?} (len {k}) for {e}, bound {bound}"
                );
            }
        }
    }

    #[test]
    fn all_backends_agree_on_queries() {
        let t = sample();
        let fm = FmStore::compute(&t);
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(2));
        let mut cache = crate::timestamp_cache::TimestampCache::new(&t, 8);
        let mut paged = crate::vm_sim::PagedTimestampStore::new(&t, &fm, 64);
        for e in t.all_event_ids() {
            let a = greatest_concurrent(&mut FmBackend(&fm), &t, e);
            let b = greatest_concurrent(&mut ClusterBackend(&cts), &t, e);
            let c = greatest_concurrent(&mut cache, &t, e);
            let d = greatest_concurrent(&mut paged, &t, e);
            assert_eq!(a, b, "cluster backend diverged at {e}");
            assert_eq!(a, c, "cache backend diverged at {e}");
            assert_eq!(a, d, "paged backend diverged at {e}");
        }
    }

    #[test]
    fn scroll_counts_ordered_pairs() {
        let t = sample();
        let fm = FmStore::compute(&t);
        let full = scroll_window(&mut FmBackend(&fm), &t, 1, 10);
        // Count ordered pairs via the oracle.
        let o = Oracle::compute(&t);
        let mut expect = 0;
        for a in t.all_event_ids() {
            for b in t.all_event_ids() {
                if a != b && o.happened_before(&t, a, b) {
                    expect += 1;
                }
            }
        }
        assert_eq!(full, expect);
        // A narrow window sees fewer pairs.
        let narrow = scroll_window(&mut FmBackend(&fm), &t, 1, 1);
        assert!(narrow < full);
    }
}
