//! A poison-tolerant reader/writer lock over `std::sync::RwLock`.
//!
//! The monitoring entity's query threads are read-mostly and independent: a
//! panic in one reader (or even a writer that left the store in a *valid*
//! but partial state) should not wedge every other thread behind a
//! `PoisonError`. This wrapper recovers the guard from a poisoned lock,
//! matching the `parking_lot` semantics the store was written against —
//! without the external dependency.

use std::sync::{PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A reader/writer lock whose guards ignore poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Shared access. Blocks; recovers from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive access. Blocks; recovers from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock, returning the value (poison-tolerant).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive access through a `&mut` borrow — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn concurrent_readers_see_writes() {
        let lock = Arc::new(RwLock::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&lock);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *l.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 4000);
    }

    #[test]
    fn poisoned_lock_still_serves() {
        let lock = Arc::new(RwLock::new(7));
        let l = Arc::clone(&lock);
        // Panic while holding the write guard: the std lock is now poisoned.
        let _ = std::thread::spawn(move || {
            let _guard = l.write();
            panic!("poison it");
        })
        .join();
        // Readers and writers keep working.
        assert_eq!(*lock.read(), 7);
        *lock.write() = 8;
        assert_eq!(*lock.read(), 8);
    }
}
