//! A paged-memory simulator for the §1.1 virtual-memory argument.
//!
//! Pre-computed Fidge/Mattern stamps laid out consecutively are read through
//! a simulated 4 KiB-page memory with a bounded LRU frame pool. A precedence
//! test touches a *single* element of a stamp, but the paging system reads
//! the whole page — "virtual memory systems presume spatial and temporal
//! locality, and thus will read in an entire 4 KB page, or in other words,
//! the complete vector. The rest of the vector typically has no further
//! value."
//!
//! The simulator counts page reads so experiments can reproduce Ward's
//! observation that one greatest-concurrent-elements query at 1000 processes
//! reads on the order of 12 000 pages.

use crate::lru::LruCache;
use cts_core::fm::FmStore;
use cts_model::{EventId, Trace};

/// Default page size, matching the paper's 4 KB.
pub const PAGE_SIZE: usize = 4096;

/// Pre-computed stamps accessed through simulated paged memory.
pub struct PagedTimestampStore<'t> {
    trace: &'t Trace,
    fm: &'t FmStore,
    /// Resident page frames (page number → ()).
    frames: LruCache<u64, ()>,
    page_size: usize,
    page_reads: u64,
    element_touches: u64,
}

impl<'t> PagedTimestampStore<'t> {
    /// Wrap a precomputed stamp store with a `frame_count`-page LRU memory.
    pub fn new(trace: &'t Trace, fm: &'t FmStore, frame_count: usize) -> PagedTimestampStore<'t> {
        Self::with_page_size(trace, fm, frame_count, PAGE_SIZE)
    }

    /// As [`new`](Self::new) with an explicit page size (tests).
    pub fn with_page_size(
        trace: &'t Trace,
        fm: &'t FmStore,
        frame_count: usize,
        page_size: usize,
    ) -> PagedTimestampStore<'t> {
        assert!(page_size >= 4, "page must hold at least one element");
        PagedTimestampStore {
            trace,
            fm,
            frames: LruCache::new(frame_count),
            page_size,
            page_reads: 0,
            element_touches: 0,
        }
    }

    /// Pages read from "disk" so far (LRU misses).
    pub fn page_reads(&self) -> u64 {
        self.page_reads
    }

    /// Individual element accesses so far.
    pub fn element_touches(&self) -> u64 {
        self.element_touches
    }

    /// Reset counters (e.g. between query measurements) without flushing the
    /// resident set.
    pub fn reset_counters(&mut self) {
        self.page_reads = 0;
        self.element_touches = 0;
    }

    fn touch_byte(&mut self, offset: u64) {
        let page = offset / self.page_size as u64;
        if self.frames.get(&page).is_none() {
            self.page_reads += 1;
            self.frames.insert(page, ());
        }
    }

    /// Read one component of one stamp (the precedence-test access pattern).
    pub fn read_component(&mut self, f: EventId, component: usize) -> u32 {
        let pos = self.trace.delivery_pos(f);
        let n = self.fm.num_processes();
        debug_assert!(component < n);
        self.element_touches += 1;
        self.touch_byte(((pos * n + component) * 4) as u64);
        self.fm.stamp_at(pos)[component]
    }

    /// Precedence through paged memory: one component read.
    pub fn precedes(&mut self, e: EventId, f: EventId) -> bool {
        if e == f {
            return false;
        }
        if e.process == f.process {
            return e.index < f.index;
        }
        self.read_component(f, e.process.idx()) >= e.index.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::{EventIndex, ProcessId, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn wide_trace(n: u32, rounds: u32) -> Trace {
        let mut b = TraceBuilder::new(n);
        for r in 0..rounds {
            for i in 0..n {
                let q = (i + 1 + r) % n;
                if q != i {
                    let s = b.send(p(i), p(q)).unwrap();
                    b.receive(p(q), s).unwrap();
                }
            }
        }
        b.finish_complete("wide").unwrap()
    }

    #[test]
    fn distinct_stamps_fault_distinct_pages() {
        let t = wide_trace(16, 4);
        let fm = FmStore::compute(&t);
        // Page = one stamp: 16 processes * 4 bytes = 64-byte "pages".
        let mut paged = PagedTimestampStore::with_page_size(&t, &fm, 8, 64);
        let e = EventId::new(p(0), EventIndex(1));
        let mut faults_expected = 0;
        for f in t.all_event_ids().take(8) {
            if f.process != e.process {
                faults_expected += 1;
                let _ = paged.precedes(e, f);
            }
        }
        assert_eq!(paged.page_reads(), faults_expected);
    }

    #[test]
    fn repeated_access_hits_resident_page() {
        let t = wide_trace(8, 2);
        let fm = FmStore::compute(&t);
        let mut paged = PagedTimestampStore::with_page_size(&t, &fm, 4, 32);
        let e = EventId::new(p(0), EventIndex(1));
        let f = EventId::new(p(1), EventIndex(2));
        paged.precedes(e, f);
        let after_first = paged.page_reads();
        paged.precedes(e, f);
        assert_eq!(paged.page_reads(), after_first);
    }

    #[test]
    fn thrash_when_frames_scarce() {
        let t = wide_trace(16, 4);
        let fm = FmStore::compute(&t);
        let mut scarce = PagedTimestampStore::with_page_size(&t, &fm, 1, 64);
        let mut ample = PagedTimestampStore::with_page_size(&t, &fm, 4096, 64);
        let e = EventId::new(p(0), EventIndex(1));
        // Two sweeps: the ample memory faults once per page, the scarce one
        // faults on both sweeps.
        for _ in 0..2 {
            for f in t.all_event_ids() {
                let _ = scarce.precedes(e, f);
                let _ = ample.precedes(e, f);
            }
        }
        assert!(scarce.page_reads() > ample.page_reads());
    }

    #[test]
    fn values_match_unpaged_store() {
        let t = wide_trace(6, 3);
        let fm = FmStore::compute(&t);
        let mut paged = PagedTimestampStore::new(&t, &fm, 64);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(paged.precedes(e, f), fm.precedes(&t, e, f));
            }
        }
    }
}
