//! The POET/OLT approach: "calculate timestamps as required … implement
//! their own caching scheme for some timestamps, and calculate forward as
//! needed. The effect is that the precedence-test cost when using such
//! timestamps is O(N)" (§1.1).
//!
//! An LRU holds recently used Fidge/Mattern stamps; a request for an uncached
//! stamp recomputes it from its immediate predecessors (recursively, until
//! cached stamps or process starts are reached). The cache instruments its
//! work in *element operations* (one `u32` touched), making the O(N)-per-test
//! growth directly measurable — experiment M3 in DESIGN.md.

use crate::lru::LruCache;
use cts_model::{EventId, Trace};

/// LRU-cached, recompute-forward Fidge/Mattern stamps.
pub struct TimestampCache<'t> {
    trace: &'t Trace,
    n: usize,
    cache: LruCache<EventId, Box<[u32]>>,
    /// Total `u32` element operations performed (vector copies and maxes).
    element_ops: u64,
    /// Events whose stamps were (re)computed.
    computed: u64,
    /// Precedence queries served.
    queries: u64,
}

impl<'t> TimestampCache<'t> {
    /// Cache over `trace` holding at most `capacity` stamps.
    pub fn new(trace: &'t Trace, capacity: usize) -> TimestampCache<'t> {
        TimestampCache {
            trace,
            n: trace.num_processes() as usize,
            cache: LruCache::new(capacity),
            element_ops: 0,
            computed: 0,
            queries: 0,
        }
    }

    /// `(element_ops, events_computed, queries)` counters.
    pub fn cost(&self) -> (u64, u64, u64) {
        (self.element_ops, self.computed, self.queries)
    }

    /// Predecessors used for *computation*: a sync half depends on both
    /// processes' previous events (its peer's stamp is identical to its own,
    /// so routing through the peer would be circular).
    fn comp_preds(&self, ev: EventId) -> [Option<EventId>; 2] {
        match self.trace.kind(ev) {
            cts_model::EventKind::Sync { peer } => [ev.prev_in_process(), peer.prev_in_process()],
            _ => self.trace.immediate_predecessors(ev),
        }
    }

    /// Cache hit/miss/eviction counters.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        self.cache.stats()
    }

    /// The stamp of `id`, recomputing as needed.
    ///
    /// Uncached ancestors are collected by DFS with the current cache
    /// contents as the boundary, then computed in topological order into a
    /// per-call memo (so a single call computes each ancestor exactly once,
    /// regardless of cache capacity); finally the computed chain is pushed
    /// through the LRU so subsequent nearby queries hit.
    pub fn stamp(&mut self, id: EventId) -> Box<[u32]> {
        if let Some(s) = self.cache.get(&id) {
            return s.clone();
        }
        use std::collections::HashMap;
        let mut memo: HashMap<EventId, Box<[u32]>> = HashMap::new();
        let mut order: Vec<EventId> = Vec::new();
        let mut visited: std::collections::HashSet<EventId> = Default::default();
        let mut stack: Vec<(EventId, bool)> = vec![(id, false)];
        while let Some((ev, expanded)) = stack.pop() {
            if expanded {
                order.push(ev);
                continue;
            }
            if visited.contains(&ev) || self.cache.peek(&ev).is_some() {
                continue;
            }
            visited.insert(ev);
            stack.push((ev, true));
            for pred in self.comp_preds(ev).into_iter().flatten() {
                if self.cache.peek(&pred).is_none() && !visited.contains(&pred) {
                    stack.push((pred, false));
                }
            }
        }
        for &ev in &order {
            let mut stamp = vec![0u32; self.n];
            for pred in self.comp_preds(ev).into_iter().flatten() {
                let ps = memo
                    .get(&pred)
                    .cloned()
                    .or_else(|| self.cache.peek(&pred).cloned())
                    .expect("topological order computes predecessors first");
                for (a, b) in stamp.iter_mut().zip(ps.iter()) {
                    *a = (*a).max(*b);
                }
                self.element_ops += self.n as u64;
            }
            stamp[ev.process.idx()] = ev.index.0;
            if let cts_model::EventKind::Sync { peer } = self.trace.kind(ev) {
                stamp[peer.process.idx()] = peer.index.0;
            }
            self.element_ops += self.n as u64; // write-out
            self.computed += 1;
            memo.insert(ev, stamp.into_boxed_slice());
        }
        let result = memo[&id].clone();
        // Warm the LRU with the freshly computed chain, oldest first, so the
        // most recent (the requested stamp and its vicinity) survive.
        for ev in order {
            if let Some(s) = memo.remove(&ev) {
                self.cache.insert(ev, s);
            }
        }
        result
    }

    /// Precedence via on-demand computation: `e → f ⇔ e ≠ f ∧ FM(f)[p_e] ≥
    /// idx(e)`. Only `f`'s stamp is needed.
    pub fn precedes(&mut self, e: EventId, f: EventId) -> bool {
        self.queries += 1;
        if e == f {
            return false;
        }
        if e.process == f.process {
            return e.index < f.index;
        }
        let fs = self.stamp(f);
        fs[e.process.idx()] >= e.index.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_core::fm::FmStore;
    use cts_model::{EventIndex, ProcessId, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn ladder(rungs: u32) -> Trace {
        let mut b = TraceBuilder::new(2);
        for _ in 0..rungs {
            let s = b.send(p(0), p(1)).unwrap();
            b.receive(p(1), s).unwrap();
            let s = b.send(p(1), p(0)).unwrap();
            b.receive(p(0), s).unwrap();
        }
        b.finish_complete("ladder").unwrap()
    }

    #[test]
    fn stamps_match_precomputed_store() {
        let t = ladder(10);
        let fm = FmStore::compute(&t);
        let mut cache = TimestampCache::new(&t, 4);
        for id in t.all_event_ids() {
            assert_eq!(&*cache.stamp(id), fm.stamp(&t, id), "{id}");
        }
    }

    #[test]
    fn stamps_match_with_sync_events() {
        let mut b = TraceBuilder::new(3);
        b.sync(p(0), p(1)).unwrap();
        b.sync(p(1), p(2)).unwrap();
        b.internal(p(2)).unwrap();
        b.sync(p(0), p(2)).unwrap();
        let t = b.finish_complete("syncs").unwrap();
        let fm = FmStore::compute(&t);
        let mut cache = TimestampCache::new(&t, 2);
        for id in t.all_event_ids() {
            assert_eq!(&*cache.stamp(id), fm.stamp(&t, id), "{id}");
        }
    }

    #[test]
    fn precedence_is_exact() {
        let t = ladder(6);
        let fm = FmStore::compute(&t);
        let mut cache = TimestampCache::new(&t, 3);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(cache.precedes(e, f), fm.precedes(&t, e, f));
            }
        }
    }

    #[test]
    fn tiny_cache_recomputes_more() {
        let t = ladder(20);
        let last = EventId::new(p(0), EventIndex(2 * 20));
        let mut big = TimestampCache::new(&t, 1024);
        big.stamp(last);
        big.stamp(last);
        let (_, computed_big, _) = big.cost();

        let mut tiny = TimestampCache::new(&t, 2);
        tiny.stamp(last);
        // Second request from the far end forces recomputation.
        tiny.stamp(EventId::new(p(1), EventIndex(1)));
        tiny.stamp(last);
        let (_, computed_tiny, _) = tiny.cost();
        assert!(
            computed_tiny > computed_big,
            "tiny {computed_tiny} !> big {computed_big}"
        );
    }

    #[test]
    fn element_ops_scale_with_process_count() {
        // Same event count, different widths: the §1.1 claim that cost grows
        // with N even when the number of events is fixed.
        let cost_for = |n: u32| {
            let mut b = TraceBuilder::new(n);
            for r in 0..30u32 {
                let a = r % n;
                let q = (a + 1) % n;
                let s = b.send(p(a), p(q)).unwrap();
                b.receive(p(q), s).unwrap();
            }
            let t = b.finish_complete("w").unwrap();
            let last = t.events().last().unwrap().id;
            let mut c = TimestampCache::new(&t, 2);
            c.precedes(EventId::new(p(0), EventIndex(1)), last);
            c.cost().0
        };
        let small = cost_for(4);
        let large = cost_for(64);
        assert!(
            large > small * 8,
            "cost should grow ~linearly with N: {small} -> {large}"
        );
    }
}
