//! The monitoring entity's event store: records of the transitive reduction
//! of the partial order, indexed by a B+-tree over `(process, event number)`.
//!
//! "The information collected will include the event's process identifier,
//! number, and type, as well as partner-event identification, if any. This
//! event data is forwarded from each process to a central monitoring entity
//! which … incrementally builds and maintains a data structure of the partial
//! order of events" (§1).

use crate::btree::{key_of, BPlusTree};
use crate::sync::RwLock;
use cts_model::{Event, EventId, EventKind, ProcessId, Trace};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One stored event: the event itself, its transitive-reduction in-edges
/// (immediate predecessors) and out-edges (immediate successors).
#[derive(Clone, Debug)]
pub struct EventRecord {
    pub event: Event,
    /// Immediate predecessors: same-process predecessor and (for receiving
    /// events) the remote source.
    pub preds: [Option<EventId>; 2],
    /// Immediate successors, filled in as later events arrive.
    pub succs: Vec<EventId>,
}

/// Errors from out-of-order or inconsistent insertion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreError {
    /// Event index is not the next for its process.
    OutOfOrder(EventId),
    /// A receive arrived before its send (invalid delivery order).
    MissingPartner(EventId),
    /// Process id out of range.
    UnknownProcess(ProcessId),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::OutOfOrder(e) => write!(f, "event {e} arrived out of order"),
            StoreError::MissingPartner(e) => write!(f, "partner of {e} not yet stored"),
            StoreError::UnknownProcess(p) => write!(f, "unknown process {p}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The incrementally built partial-order store.
pub struct EventStore {
    num_processes: u32,
    records: Vec<EventRecord>,
    /// `(process, index)` → position in `records`.
    index: BPlusTree<u32>,
    /// Events accepted per process.
    counts: Vec<u32>,
}

impl EventStore {
    /// Empty store over `n` processes.
    pub fn new(num_processes: u32) -> EventStore {
        EventStore {
            num_processes,
            records: Vec::new(),
            index: BPlusTree::new(),
            counts: vec![0; num_processes as usize],
        }
    }

    /// Build a store from a complete trace.
    pub fn from_trace(trace: &Trace) -> EventStore {
        let mut s = EventStore::new(trace.num_processes());
        for &ev in trace.events() {
            s.insert(ev).expect("trace delivery order is valid");
        }
        s
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of processes.
    pub fn num_processes(&self) -> u32 {
        self.num_processes
    }

    /// Insert the next event (delivery order). Maintains transitive-reduction
    /// edges in both directions.
    pub fn insert(&mut self, event: Event) -> Result<(), StoreError> {
        let p = event.process();
        if p.idx() >= self.num_processes as usize {
            return Err(StoreError::UnknownProcess(p));
        }
        if event.index().0 != self.counts[p.idx()] + 1 {
            return Err(StoreError::OutOfOrder(event.id));
        }
        // Partner must exist already — except a sync's *second* half, whose
        // first half references forward; accept sync partners lazily.
        let src = event.kind.receive_source();
        if let Some(src_id) = src {
            let present = self.index.get(key_of(src_id)).is_some();
            let is_sync = matches!(event.kind, EventKind::Sync { .. });
            if !present && !is_sync {
                return Err(StoreError::MissingPartner(event.id));
            }
        }
        let pos = self.records.len() as u32;
        let preds = [event.id.prev_in_process(), src];
        self.records.push(EventRecord {
            event,
            preds,
            succs: Vec::new(),
        });
        self.index.insert(key_of(event.id), pos);
        self.counts[p.idx()] += 1;
        // Back-fill successor links.
        for pred in preds.into_iter().flatten() {
            if let Some(ppos) = self.index.get(key_of(pred)) {
                self.records[ppos as usize].succs.push(event.id);
            }
        }
        Ok(())
    }

    /// Look up an event record.
    pub fn get(&self, id: EventId) -> Option<&EventRecord> {
        self.index
            .get(key_of(id))
            .map(|pos| &self.records[pos as usize])
    }

    /// The events of process `p` with indices in `[from, to)` — the lookup a
    /// visualization performs when scrolling a process timeline.
    pub fn process_window(&self, p: ProcessId, from: u32, to: u32) -> Vec<&EventRecord> {
        let lo = key_of(EventId::new(p, cts_model::EventIndex(from.max(1))));
        let hi = key_of(EventId::new(p, cts_model::EventIndex(to.max(1))));
        self.index
            .range(lo, hi)
            .into_iter()
            .map(|(_, pos)| &self.records[pos as usize])
            .collect()
    }

    /// All records in delivery order.
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// The store's canonical serialization: the bare events in delivery
    /// order. Because the store is a deterministic function of this
    /// sequence, `from_delivery_log(num_processes, &delivery_log())` is an
    /// exact clone — this is what daemon checkpoints persist.
    pub fn delivery_log(&self) -> Vec<Event> {
        self.records.iter().map(|r| r.event).collect()
    }

    /// Rebuild a store from a delivery log (see
    /// [`delivery_log`](EventStore::delivery_log)). Fails if the sequence is
    /// not a valid delivery order.
    pub fn from_delivery_log(
        num_processes: u32,
        events: &[Event],
    ) -> Result<EventStore, StoreError> {
        let mut s = EventStore::new(num_processes);
        for &ev in events {
            s.insert(ev)?;
        }
        Ok(s)
    }
}

/// The second [`SharedStore::ingest_handle`] claim while a handle is alive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WriterAlreadyClaimed;

impl std::fmt::Display for WriterAlreadyClaimed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the store's single ingest handle is already claimed")
    }
}

impl std::error::Error for WriterAlreadyClaimed {}

struct StoreShared {
    lock: RwLock<EventStore>,
    writer_claimed: AtomicBool,
}

/// A thread-shareable store: many query threads, one ingest thread — the
/// deployment shape of a live monitoring entity.
///
/// The shape is *enforced*, not just documented: all mutation goes through an
/// [`IngestHandle`], and [`ingest_handle`](SharedStore::ingest_handle) hands
/// out at most one live handle at a time. Query threads clone the
/// `SharedStore` freely and take read guards.
#[derive(Clone)]
pub struct SharedStore {
    inner: Arc<StoreShared>,
}

impl SharedStore {
    /// Wrap a store for sharing.
    pub fn new(store: EventStore) -> SharedStore {
        SharedStore {
            inner: Arc::new(StoreShared {
                lock: RwLock::new(store),
                writer_claimed: AtomicBool::new(false),
            }),
        }
    }

    /// Shared read access (any number of concurrent readers).
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, EventStore> {
        self.inner.lock.read()
    }

    /// Claim the single ingest handle. Fails while another handle is alive;
    /// dropping the handle releases the claim.
    pub fn ingest_handle(&self) -> Result<IngestHandle, WriterAlreadyClaimed> {
        if self.inner.writer_claimed.swap(true, Ordering::AcqRel) {
            return Err(WriterAlreadyClaimed);
        }
        Ok(IngestHandle {
            shared: Arc::clone(&self.inner),
        })
    }
}

/// The exclusive write capability of a [`SharedStore`]: at most one exists
/// per store at any time, making "many query threads, one ingest thread" a
/// compile-and-run-time property rather than a comment.
pub struct IngestHandle {
    shared: Arc<StoreShared>,
}

impl IngestHandle {
    /// Insert the next event in delivery order (see [`EventStore::insert`]).
    /// Takes the write lock only for the duration of the insert.
    pub fn insert(&mut self, event: Event) -> Result<(), StoreError> {
        self.shared.lock.write().insert(event)
    }

    /// Number of events currently stored.
    pub fn len(&self) -> usize {
        self.shared.lock.read().len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for IngestHandle {
    fn drop(&mut self) {
        self.shared.writer_claimed.store(false, Ordering::Release);
    }
}

/// A partial-order store partitioned by process: one append-only row of
/// [`EventRecord`]s per process, each behind its own lock — the storage
/// shape of a *sharded* monitoring entity, where N ingest workers each own
/// a disjoint group of processes and insert concurrently.
///
/// Writer discipline is positional rather than handle-enforced: every
/// process has exactly one owning shard at a time (ownership moves only at
/// full-stop rebalance barriers), so row appends never race. Cross-process
/// succ back-fill takes the partner's row lock briefly; locks are never
/// nested, so the store cannot deadlock. Row `p` holds the events of
/// process `p` in index order, which makes window scans a direct slice —
/// no global B+-tree is needed.
///
/// Unlike [`EventStore::insert`], a receive's remote source may be owned by
/// another shard. Causal delivery still guarantees the source was inserted
/// first (a shard publishes a send's clock only after storing it, and the
/// receiver consumes that clock before inserting the receive), so the
/// partner check remains exact — it reads the source row's length instead
/// of a shared index.
pub struct PartitionedStore {
    rows: Vec<RwLock<Vec<EventRecord>>>,
    len: std::sync::atomic::AtomicU64,
}

impl PartitionedStore {
    /// Empty store over `n` processes.
    pub fn new(num_processes: u32) -> PartitionedStore {
        PartitionedStore {
            rows: (0..num_processes)
                .map(|_| RwLock::new(Vec::new()))
                .collect(),
            len: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> u32 {
        self.rows.len() as u32
    }

    /// Total events stored (all rows).
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert the next event of its process (the caller must be the
    /// process's owning shard, making this per-row sequential). Maintains
    /// transitive-reduction edges in both directions, back-filling the
    /// partner row without ever holding two row locks at once.
    pub fn insert(&self, event: Event) -> Result<(), StoreError> {
        let p = event.process();
        if p.idx() >= self.rows.len() {
            return Err(StoreError::UnknownProcess(p));
        }
        let src = event.kind.receive_source();
        if let Some(src_id) = src {
            if src_id.process.idx() >= self.rows.len() {
                return Err(StoreError::UnknownProcess(src_id.process));
            }
            let present = self.rows[src_id.process.idx()].read().len() as u32 >= src_id.index.0;
            let is_sync = matches!(event.kind, EventKind::Sync { .. });
            if !present && !is_sync {
                return Err(StoreError::MissingPartner(event.id));
            }
        }
        let preds = [event.id.prev_in_process(), src];
        {
            let mut row = self.rows[p.idx()].write();
            if event.index().0 != row.len() as u32 + 1 {
                return Err(StoreError::OutOfOrder(event.id));
            }
            row.push(EventRecord {
                event,
                preds,
                succs: Vec::new(),
            });
        }
        self.len.fetch_add(1, Ordering::AcqRel);
        // Back-fill successor links, one short row lock at a time.
        for pred in preds.into_iter().flatten() {
            let mut row = self.rows[pred.process.idx()].write();
            if let Some(rec) = row.get_mut(pred.index.0 as usize - 1) {
                rec.succs.push(event.id);
            }
        }
        Ok(())
    }

    /// Look up an event record (cloned out of its row).
    pub fn get(&self, id: EventId) -> Option<EventRecord> {
        let row = self.rows.get(id.process.idx())?.read();
        row.get(id.index.0.checked_sub(1)? as usize).cloned()
    }

    /// Is the event stored?
    pub fn contains(&self, id: EventId) -> bool {
        match self.rows.get(id.process.idx()) {
            Some(row) => id.index.0 >= 1 && row.read().len() as u32 >= id.index.0,
            None => false,
        }
    }

    /// Events accepted for process `p` so far.
    pub fn process_len(&self, p: ProcessId) -> u32 {
        self.rows
            .get(p.idx())
            .map_or(0, |row| row.read().len() as u32)
    }

    /// The events of process `p` with indices in `[from, to)` — a direct
    /// row slice, no tree walk.
    pub fn process_window(&self, p: ProcessId, from: u32, to: u32) -> Vec<EventRecord> {
        let Some(row) = self.rows.get(p.idx()) else {
            return Vec::new();
        };
        let row = row.read();
        let lo = (from.max(1) - 1) as usize;
        let hi = ((to.max(1) - 1) as usize).min(row.len());
        if lo >= hi {
            return Vec::new();
        }
        row[lo..hi].to_vec()
    }

    /// The full row of process `p` (cloned) — the per-process event
    /// sequence a snapshot cut merges from.
    pub fn process_events(&self, p: ProcessId) -> Vec<Event> {
        self.rows[p.idx()].read().iter().map(|r| r.event).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_model::{EventIndex, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn id(pr: u32, i: u32) -> EventId {
        EventId::new(p(pr), EventIndex(i))
    }

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new(3);
        let s = b.send(p(0), p(1)).unwrap();
        b.receive(p(1), s).unwrap();
        b.sync(p(1), p(2)).unwrap();
        b.internal(p(0)).unwrap();
        let s2 = b.send(p(2), p(0)).unwrap();
        b.receive(p(0), s2).unwrap();
        b.finish_complete("sample").unwrap()
    }

    #[test]
    fn from_trace_builds_reduction_edges() {
        let t = sample_trace();
        let s = EventStore::from_trace(&t);
        assert_eq!(s.len(), t.num_events());
        // The receive on P1 has both a process predecessor (none — it's
        // first) and the remote send.
        let r = s.get(id(1, 1)).unwrap();
        assert_eq!(r.preds, [None, Some(id(0, 1))]);
        // The send on P0 lists the receive as successor.
        let send = s.get(id(0, 1)).unwrap();
        assert!(send.succs.contains(&id(1, 1)));
    }

    #[test]
    fn rejects_out_of_order_and_missing_partner() {
        let mut s = EventStore::new(2);
        assert_eq!(
            s.insert(Event::new(id(0, 2), EventKind::Internal)),
            Err(StoreError::OutOfOrder(id(0, 2)))
        );
        assert_eq!(
            s.insert(Event::new(id(1, 1), EventKind::Receive { from: id(0, 1) })),
            Err(StoreError::MissingPartner(id(1, 1)))
        );
        assert_eq!(
            s.insert(Event::new(id(5, 1), EventKind::Internal)),
            Err(StoreError::UnknownProcess(p(5)))
        );
    }

    #[test]
    fn sync_forward_reference_is_accepted_and_backfilled() {
        let t = sample_trace();
        let s = EventStore::from_trace(&t);
        // First sync half references the second; both link as successors of
        // each other's process predecessors.
        let h1 = s.get(id(1, 2)).unwrap();
        assert_eq!(h1.preds[1], Some(id(2, 1)));
        let h2 = s.get(id(2, 1)).unwrap();
        // The second half lists the first as successor (back-filled).
        assert!(h2.succs.contains(&id(1, 2)) || h1.succs.contains(&id(2, 1)));
    }

    #[test]
    fn process_window_scrolls() {
        let t = sample_trace();
        let s = EventStore::from_trace(&t);
        let w = s.process_window(p(0), 1, 4);
        assert_eq!(w.len(), 3);
        assert!(w.iter().all(|r| r.event.process() == p(0)));
        let w2 = s.process_window(p(0), 2, 3);
        assert_eq!(w2.len(), 1);
        assert_eq!(w2[0].event.id, id(0, 2));
    }

    #[test]
    fn delivery_log_roundtrips_exactly() {
        let t = sample_trace();
        let s = EventStore::from_trace(&t);
        let log = s.delivery_log();
        assert_eq!(log, t.events());
        let rebuilt = EventStore::from_delivery_log(s.num_processes(), &log).unwrap();
        assert_eq!(rebuilt.len(), s.len());
        for r in s.records() {
            let r2 = rebuilt.get(r.event.id).unwrap();
            assert_eq!(r2.event, r.event);
            assert_eq!(r2.preds, r.preds);
            assert_eq!(r2.succs, r.succs);
        }
        // An invalid order (gap) is rejected, not silently absorbed.
        let mut bad = log.clone();
        bad.remove(0);
        assert!(EventStore::from_delivery_log(s.num_processes(), &bad).is_err());
    }

    #[test]
    fn shared_store_concurrent_readers() {
        let t = sample_trace();
        let shared = SharedStore::new(EventStore::from_trace(&t));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                let g = s.read();
                assert!(g.get(id(0, 1)).is_some());
                g.len()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), t.num_events());
        }
    }

    #[test]
    fn partitioned_store_matches_event_store_on_a_trace() {
        let t = sample_trace();
        let part = PartitionedStore::new(t.num_processes());
        for &ev in t.events() {
            part.insert(ev).unwrap();
        }
        let flat = EventStore::from_trace(&t);
        assert_eq!(part.len(), flat.len() as u64);
        for r in flat.records() {
            let pr = part.get(r.event.id).unwrap();
            assert_eq!(pr.event, r.event);
            assert_eq!(pr.preds, r.preds);
            // succ *sets* agree; order may differ because back-fill is
            // per-row rather than global.
            let mut a = pr.succs.clone();
            let mut b = r.succs.clone();
            a.sort_unstable_by_key(|e| (e.process.0, e.index.0));
            b.sort_unstable_by_key(|e| (e.process.0, e.index.0));
            assert_eq!(a, b, "succs of {}", r.event.id);
        }
        // Window scans agree with the flat store's.
        for pr in 0..t.num_processes() {
            let w: Vec<EventId> = part
                .process_window(p(pr), 1, 100)
                .into_iter()
                .map(|r| r.event.id)
                .collect();
            let w2: Vec<EventId> = flat
                .process_window(p(pr), 1, 100)
                .into_iter()
                .map(|r| r.event.id)
                .collect();
            assert_eq!(w, w2);
        }
    }

    #[test]
    fn partitioned_store_rejects_bad_inserts() {
        let s = PartitionedStore::new(2);
        assert_eq!(
            s.insert(Event::new(id(0, 2), EventKind::Internal)),
            Err(StoreError::OutOfOrder(id(0, 2)))
        );
        assert_eq!(
            s.insert(Event::new(id(1, 1), EventKind::Receive { from: id(0, 1) })),
            Err(StoreError::MissingPartner(id(1, 1)))
        );
        assert_eq!(
            s.insert(Event::new(id(5, 1), EventKind::Internal)),
            Err(StoreError::UnknownProcess(p(5)))
        );
        assert!(!s.contains(id(0, 1)));
        s.insert(Event::new(id(0, 1), EventKind::Internal)).unwrap();
        assert!(s.contains(id(0, 1)));
        assert_eq!(s.process_len(p(0)), 1);
    }

    #[test]
    fn second_ingest_handle_is_refused_until_first_drops() {
        let t = sample_trace();
        let shared = SharedStore::new(EventStore::new(t.num_processes()));
        let mut w = shared.ingest_handle().unwrap();
        // The two-writer misuse: a second claimant — even via a clone of the
        // shared store, even from another thread — is turned away.
        assert_eq!(shared.ingest_handle().err(), Some(WriterAlreadyClaimed));
        let clone = shared.clone();
        let from_thread = std::thread::spawn(move || clone.ingest_handle().err())
            .join()
            .unwrap();
        assert_eq!(from_thread, Some(WriterAlreadyClaimed));
        // The sole writer works; readers are unrestricted alongside it.
        for &ev in t.events() {
            w.insert(ev).unwrap();
        }
        assert_eq!(w.len(), t.num_events());
        assert_eq!(shared.read().len(), t.num_events());
        // Dropping the handle releases the claim.
        drop(w);
        assert!(shared.ingest_handle().is_ok());
    }
}
