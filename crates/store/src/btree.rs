//! A from-scratch B+-tree: the "B-tree-like index" the observation tools use
//! to find an event given its process identifier and event number (§1).
//!
//! Arena-allocated nodes, `u64` keys (callers pack `(process, index)` with
//! [`key_of`]), values in the leaves, leaves linked for range scans.

use cts_model::{EventId, EventIndex, ProcessId};

/// Maximum keys per node (the tree's order). 16 keeps nodes around one cache
/// line of keys while exercising splits in tests.
const B: usize = 16;

/// Pack an event id into an ordered `u64` key: process-major, index-minor —
/// so one process's events are contiguous in key space.
#[inline]
pub fn key_of(id: EventId) -> u64 {
    ((id.process.0 as u64) << 32) | id.index.0 as u64
}

/// Unpack a key produced by [`key_of`].
#[inline]
pub fn id_of(key: u64) -> EventId {
    EventId::new(ProcessId((key >> 32) as u32), EventIndex(key as u32))
}

enum Node<V> {
    Internal {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]` (≥ key).
        keys: Vec<u64>,
        children: Vec<u32>,
    },
    Leaf {
        keys: Vec<u64>,
        vals: Vec<V>,
        next: Option<u32>,
    },
}

/// A B+ tree from `u64` keys to copyable values.
pub struct BPlusTree<V> {
    nodes: Vec<Node<V>>,
    root: u32,
    len: usize,
}

impl<V: Copy> Default for BPlusTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy> BPlusTree<V> {
    /// Empty tree.
    pub fn new() -> BPlusTree<V> {
        BPlusTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: None,
            }],
            root: 0,
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Look up a key.
    pub fn get(&self, key: u64) -> Option<V> {
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Internal { keys, children } => {
                    let i = keys.partition_point(|&k| k <= key);
                    node = children[i];
                }
                Node::Leaf { keys, vals, .. } => {
                    return keys.binary_search(&key).ok().map(|i| vals[i]);
                }
            }
        }
    }

    /// Insert (or replace) a key. Returns the previous value if any.
    pub fn insert(&mut self, key: u64, val: V) -> Option<V> {
        let root = self.root;
        match self.insert_rec(root, key, val) {
            InsertResult::Done(prev) => {
                if prev.is_none() {
                    self.len += 1;
                }
                prev
            }
            InsertResult::Split(sep, right) => {
                let new_root = self.nodes.len() as u32;
                self.nodes.push(Node::Internal {
                    keys: vec![sep],
                    children: vec![root, right],
                });
                self.root = new_root;
                self.len += 1;
                None
            }
        }
    }

    fn insert_rec(&mut self, node: u32, key: u64, val: V) -> InsertResult<V> {
        match &mut self.nodes[node as usize] {
            Node::Leaf { keys, vals, .. } => {
                match keys.binary_search(&key) {
                    Ok(i) => {
                        let prev = vals[i];
                        vals[i] = val;
                        return InsertResult::Done(Some(prev));
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        vals.insert(i, val);
                    }
                }
                if keys.len() <= B {
                    return InsertResult::Done(None);
                }
                // Split leaf.
                let mid = keys.len() / 2;
                let rk: Vec<u64> = keys.split_off(mid);
                let rv: Vec<V> = vals.split_off(mid);
                let sep = rk[0];
                let right_id = self.nodes.len() as u32;
                // Fix sibling links.
                let old_next = match &mut self.nodes[node as usize] {
                    Node::Leaf { next, .. } => {
                        let o = *next;
                        *next = Some(right_id);
                        o
                    }
                    _ => unreachable!(),
                };
                self.nodes.push(Node::Leaf {
                    keys: rk,
                    vals: rv,
                    next: old_next,
                });
                InsertResult::Split(sep, right_id)
            }
            Node::Internal { keys, children } => {
                let i = keys.partition_point(|&k| k <= key);
                let child = children[i];
                match self.insert_rec(child, key, val) {
                    InsertResult::Done(prev) => InsertResult::Done(prev),
                    InsertResult::Split(sep, right) => {
                        let (keys, children) = match &mut self.nodes[node as usize] {
                            Node::Internal { keys, children } => (keys, children),
                            _ => unreachable!(),
                        };
                        keys.insert(i, sep);
                        children.insert(i + 1, right);
                        if keys.len() <= B {
                            return InsertResult::Done(None);
                        }
                        // Split internal node: middle key moves up.
                        let mid = keys.len() / 2;
                        let up = keys[mid];
                        let rk: Vec<u64> = keys.split_off(mid + 1);
                        keys.pop();
                        let rc: Vec<u32> = children.split_off(mid + 1);
                        let right_id = self.nodes.len() as u32;
                        self.nodes.push(Node::Internal {
                            keys: rk,
                            children: rc,
                        });
                        InsertResult::Split(up, right_id)
                    }
                }
            }
        }
    }

    /// All `(key, value)` pairs with `lo <= key < hi`, ascending.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        // Descend to the leaf containing lo.
        let mut node = self.root;
        while let Node::Internal { keys, children } = &self.nodes[node as usize] {
            let i = keys.partition_point(|&k| k <= lo);
            node = children[i];
        }
        let mut leaf = Some(node);
        while let Some(l) = leaf {
            match &self.nodes[l as usize] {
                Node::Leaf { keys, vals, next } => {
                    for (i, &k) in keys.iter().enumerate() {
                        if k >= hi {
                            return out;
                        }
                        if k >= lo {
                            out.push((k, vals[i]));
                        }
                    }
                    leaf = *next;
                }
                _ => unreachable!(),
            }
        }
        out
    }

    /// Height of the tree (1 = just a leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Internal { children, .. } => {
                    h += 1;
                    node = children[0];
                }
                Node::Leaf { .. } => return h,
            }
        }
    }
}

enum InsertResult<V> {
    Done(Option<V>),
    Split(u64, u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_packing_orders_by_process_then_index() {
        let a = key_of(EventId::new(ProcessId(1), EventIndex(999)));
        let b = key_of(EventId::new(ProcessId(2), EventIndex(1)));
        assert!(a < b);
        let id = EventId::new(ProcessId(7), EventIndex(42));
        assert_eq!(id_of(key_of(id)), id);
    }

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new();
        assert!(t.is_empty());
        for k in [5u64, 1, 9, 3] {
            assert_eq!(t.insert(k, k * 10), None);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(3), Some(30));
        assert_eq!(t.get(4), None);
        assert_eq!(t.insert(3, 99), Some(30));
        assert_eq!(t.get(3), Some(99));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn many_inserts_force_splits() {
        let mut t = BPlusTree::new();
        let n = 10_000u64;
        // Insert in a scrambled order.
        for i in 0..n {
            let k = (i * 2_654_435_761) % n;
            t.insert(k, k as u32);
        }
        assert_eq!(t.len() as u64, n);
        assert!(t.height() >= 3, "height {}", t.height());
        for k in 0..n {
            assert_eq!(t.get(k), Some(k as u32), "key {k}");
        }
    }

    #[test]
    fn range_scan_is_sorted_and_bounded() {
        let mut t = BPlusTree::new();
        for k in (0..1000u64).rev() {
            t.insert(k * 3, k);
        }
        let r = t.range(30, 91);
        let keys: Vec<u64> = r.iter().map(|&(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![
                30, 33, 36, 39, 42, 45, 48, 51, 54, 57, 60, 63, 66, 69, 72, 75, 78, 81, 84, 87, 90
            ]
        );
    }

    #[test]
    fn per_process_range_via_key_packing() {
        let mut t = BPlusTree::new();
        for p in 0..5u32 {
            for i in 1..=50u32 {
                t.insert(
                    key_of(EventId::new(ProcessId(p), EventIndex(i))),
                    p * 100 + i,
                );
            }
        }
        let lo = key_of(EventId::new(ProcessId(2), EventIndex(1)));
        let hi = key_of(EventId::new(ProcessId(3), EventIndex(1)));
        let r = t.range(lo, hi);
        assert_eq!(r.len(), 50);
        assert!(r.iter().all(|&(k, _)| id_of(k).process == ProcessId(2)));
    }

    #[test]
    fn duplicate_heavy_workload() {
        let mut t = BPlusTree::new();
        for round in 0..5u32 {
            for k in 0..200u64 {
                t.insert(k, round);
            }
        }
        assert_eq!(t.len(), 200);
        for k in 0..200u64 {
            assert_eq!(t.get(k), Some(4));
        }
    }
}
