//! Epoch-carried query cache shared across the connections of a computation.
//!
//! The daemon's snapshots are prefix-monotone: epoch `k + 1` extends epoch
//! `k` by appending delivered events, never rewriting them. A precedence
//! verdict or a materialized Fidge/Mattern clock therefore concerns only
//! events that exist in *every* later epoch, and stays valid forever — the
//! same observation Replay Clocks make for append-only causal orders. The
//! cache is carried across epoch publishes with **no invalidation**; the
//! only entries that could ever be wrong are ones about events a snapshot
//! does not contain, and those are never inserted (the daemon answers
//! `UNKNOWN_EVENT` before consulting the cache).
//!
//! Three memo layers, each a size-bounded LRU:
//!
//! * **stamps** — `EventId → Arc<VectorClock>`: the materialized full clock
//!   of an event (see `ClusterTimestamps::materialized_clock`). One stamp
//!   answers *every* `? → f` question about its event in O(1).
//! * **verdicts** — `(e, f) → bool`: individual precedence answers, for the
//!   pair-repeat pattern tools exhibit while scrolling.
//! * **gc** — `(e, delivered) → Arc<[Option<EventId>]>`: greatest-concurrent
//!   result vectors. Unlike precedence these *do* grow as the trace grows,
//!   so the key carries the snapshot's delivered-prefix length; entries for
//!   superseded prefixes are not consulted again and age out via LRU.
//!
//! Locking is sharded: keys hash to one of [`NUM_SHARDS`] independent
//! mutexes, so concurrent connections rarely contend. Hit/miss/eviction
//! counts aggregate the per-shard LRU counters on demand.

use crate::lru::LruCache;
use cts_core::VectorClock;
use cts_model::EventId;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Shard count (power of two). 16 shards keep contention negligible for a
/// handful of connection threads without bloating small caches.
const NUM_SHARDS: usize = 16;

/// Aggregated cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

struct CacheShard {
    stamps: LruCache<EventId, Arc<VectorClock>>,
    verdicts: LruCache<(EventId, EventId), bool>,
    gc: LruCache<(EventId, u64), Arc<Vec<Option<EventId>>>>,
}

/// Concurrent, sharded-lock, size-bounded memo of query results. See the
/// module docs for the carry-forward argument.
pub struct SharedQueryCache {
    shards: Vec<Mutex<CacheShard>>,
}

impl SharedQueryCache {
    /// Cache bounded at roughly `capacity` entries per memo layer,
    /// distributed across the shards.
    pub fn new(capacity: usize) -> SharedQueryCache {
        let per_shard = (capacity / NUM_SHARDS).max(4);
        let shards = (0..NUM_SHARDS)
            .map(|_| {
                Mutex::new(CacheShard {
                    stamps: LruCache::new(per_shard),
                    verdicts: LruCache::new(per_shard),
                    gc: LruCache::new(per_shard.min(1024)),
                })
            })
            .collect();
        SharedQueryCache { shards }
    }

    fn shard<K: Hash>(&self, key: &K) -> std::sync::MutexGuard<'_, CacheShard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let i = (h.finish() as usize) & (NUM_SHARDS - 1);
        self.shards[i].lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Cached materialized clock of `f`, if present.
    pub fn stamp(&self, f: EventId) -> Option<Arc<VectorClock>> {
        self.shard(&f).stamps.get(&f).cloned()
    }

    /// Memoize the materialized clock of `f`.
    pub fn insert_stamp(&self, f: EventId, clock: Arc<VectorClock>) {
        self.shard(&f).stamps.insert(f, clock);
    }

    /// Cached `e → f` verdict, if present.
    pub fn verdict(&self, e: EventId, f: EventId) -> Option<bool> {
        self.shard(&(e, f)).verdicts.get(&(e, f)).copied()
    }

    /// Memoize an `e → f` verdict.
    pub fn insert_verdict(&self, e: EventId, f: EventId, v: bool) {
        self.shard(&(e, f)).verdicts.insert((e, f), v);
    }

    /// Cached greatest-concurrent vector for `e` at a delivered-prefix
    /// length, if present.
    pub fn gc(&self, e: EventId, delivered: u64) -> Option<Arc<Vec<Option<EventId>>>> {
        self.shard(&(e, delivered)).gc.get(&(e, delivered)).cloned()
    }

    /// Memoize a greatest-concurrent vector.
    pub fn insert_gc(&self, e: EventId, delivered: u64, gc: Arc<Vec<Option<EventId>>>) {
        self.shard(&(e, delivered)).gc.insert((e, delivered), gc);
    }

    /// Aggregate hit/miss/eviction counts across all shards and layers.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(|p| p.into_inner());
            for (h, m, e) in [s.stamps.stats(), s.verdicts.stats(), s.gc.stats()] {
                total.hits += h;
                total.misses += m;
                total.evictions += e;
            }
        }
        total
    }
}

/// A [`PrecedenceBackend`](crate::queries::PrecedenceBackend) over cluster
/// timestamps that reads and feeds a [`SharedQueryCache`].
///
/// On a stamp miss it *materializes* the target event's full Fidge/Mattern
/// clock (O(c·N)) and memoizes it, so every later precedence test against
/// that event — from any connection — is a single component comparison.
pub struct CachedClusterBackend<'a> {
    pub cts: &'a cts_core::cluster::ClusterTimestamps,
    pub cache: &'a SharedQueryCache,
}

impl CachedClusterBackend<'_> {
    fn stamp_of(&self, trace: &cts_model::Trace, f: EventId) -> Arc<VectorClock> {
        if let Some(clock) = self.cache.stamp(f) {
            return clock;
        }
        let clock = Arc::new(self.cts.materialized_clock(trace, f));
        self.cache.insert_stamp(f, Arc::clone(&clock));
        clock
    }
}

impl crate::queries::PrecedenceBackend for CachedClusterBackend<'_> {
    fn precedes(&mut self, trace: &cts_model::Trace, e: EventId, f: EventId) -> bool {
        if e == f {
            return false;
        }
        if e.process == f.process {
            return e.index < f.index;
        }
        if let Some(v) = self.cache.verdict(e, f) {
            return v;
        }
        let v = self.stamp_of(trace, f).get(e.process) >= e.index.0;
        self.cache.insert_verdict(e, f, v);
        v
    }

    fn predecessor_clock(&mut self, trace: &cts_model::Trace, e: EventId) -> Option<VectorClock> {
        Some((*self.stamp_of(trace, e)).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{greatest_concurrent, greatest_concurrent_linear, FmBackend};
    use crate::queries::{ClusterBackend, PrecedenceBackend};
    use cts_core::fm::FmStore;
    use cts_core::{ClusterEngine, MergeOnFirst};
    use cts_model::{EventIndex, ProcessId, Trace, TraceBuilder};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(4);
        for _ in 0..5 {
            for i in 0..4u32 {
                b.internal(p(i)).unwrap();
                let s = b.send(p(i), p((i + 1) % 4)).unwrap();
                b.receive(p((i + 1) % 4), s).unwrap();
            }
        }
        b.finish_complete("shared-cache-sample").unwrap()
    }

    #[test]
    fn cached_backend_matches_uncached() {
        let t = sample();
        let fm = FmStore::compute(&t);
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(2));
        let cache = SharedQueryCache::new(1 << 12);
        // Two passes: the second must be answered from the cache yet agree.
        for _ in 0..2 {
            let mut cached = CachedClusterBackend {
                cts: &cts,
                cache: &cache,
            };
            for e in t.all_event_ids() {
                for f in t.all_event_ids() {
                    assert_eq!(
                        cached.precedes(&t, e, f),
                        fm.precedes(&t, e, f),
                        "{e} -> {f}"
                    );
                }
                assert_eq!(
                    greatest_concurrent(&mut cached, &t, e),
                    greatest_concurrent_linear(&mut FmBackend(&fm), &t, e),
                    "gc diverged at {e}"
                );
            }
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "second pass produced no cache hits");
    }

    #[test]
    fn eviction_keeps_answers_correct() {
        let t = sample();
        let fm = FmStore::compute(&t);
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(2));
        // Tiny cache: NUM_SHARDS * 4 entries per layer forces churn.
        let cache = SharedQueryCache::new(1);
        let mut cached = CachedClusterBackend {
            cts: &cts,
            cache: &cache,
        };
        for _ in 0..2 {
            for e in t.all_event_ids() {
                for f in t.all_event_ids() {
                    assert_eq!(cached.precedes(&t, e, f), fm.precedes(&t, e, f));
                }
            }
        }
        assert!(cache.stats().evictions > 0, "tiny cache never evicted");
    }

    #[test]
    fn gc_memo_is_prefix_keyed() {
        let t = sample();
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(2));
        let cache = SharedQueryCache::new(1 << 10);
        let e = cts_model::EventId::new(p(1), EventIndex(3));
        let gc = Arc::new(greatest_concurrent(&mut ClusterBackend(&cts), &t, e));
        cache.insert_gc(e, 100, Arc::clone(&gc));
        assert_eq!(cache.gc(e, 100).as_deref(), Some(&*gc));
        // A different (longer) delivered prefix must not see the old vector.
        assert!(cache.gc(e, 200).is_none());
    }

    #[test]
    fn cache_is_shared_across_threads() {
        let t = sample();
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(2));
        let fm = FmStore::compute(&t);
        let cache = Arc::new(SharedQueryCache::new(1 << 12));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = &cache;
                let t = &t;
                let cts = &cts;
                let fm = &fm;
                s.spawn(move || {
                    let mut cached = CachedClusterBackend { cts, cache };
                    for e in t.all_event_ids() {
                        for f in t.all_event_ids() {
                            assert_eq!(cached.precedes(t, e, f), fm.precedes(t, e, f));
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(stats.hits > 0);
    }
}
