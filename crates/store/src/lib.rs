//! # cts-store — the monitoring-entity partial-order data structure
//!
//! Communication-visualization tools (POET, Object-Level Trace, ATEMPT) keep
//! "the transitive reduction of the partial order, typically accessed with a
//! B-tree-like index" (§1). This crate is that substrate, built from scratch:
//!
//! - [`btree`]: a B+-tree index keyed by `(process, event number)`;
//! - [`lru`]: an exact O(1) LRU used by both caches below;
//! - [`event_store`]: the monitoring entity — event records with their
//!   transitive-reduction edges, indexed for efficient lookup;
//! - [`timestamp_cache`]: the POET/OLT strategy of *calculating timestamps as
//!   required* — an LRU of Fidge/Mattern stamps with recompute-forward, whose
//!   instrumented cost reproduces the §1.1 claim that precedence tests
//!   become O(N)-expensive as the process count grows;
//! - [`vm_sim`]: a paged-memory simulator (4 KiB pages, LRU frames) that
//!   reproduces the §1.1 claim that *pre-computed* stamps thrash virtual
//!   memory — "about 12,000 pages of virtual memory to be read, only to be
//!   discarded" for one greatest-concurrent query at 1000 processes;
//! - [`queries`]: precedence, greatest-concurrent-elements, and partial-order
//!   scrolling over any timestamp backend;
//! - [`epoch_retainer`]: a capacity/byte-bounded ring of retained epoch
//!   snapshots with pin/unpin, backing the daemon's time-travel read path;
//! - [`sync`]: the poison-tolerant `RwLock` wrapper the shared store hands
//!   its query threads.

pub mod btree;
pub mod epoch_retainer;
pub mod event_store;
pub mod lru;
pub mod queries;
pub mod shared_cache;
pub mod sync;
pub mod timestamp_cache;
pub mod vm_sim;

pub use btree::BPlusTree;
pub use epoch_retainer::{EpochInfo, EpochRetainer, PinnedEpoch};
pub use event_store::{EventStore, IngestHandle, PartitionedStore, SharedStore};
pub use lru::LruCache;
pub use shared_cache::{CacheStats, CachedClusterBackend, SharedQueryCache};
pub use timestamp_cache::TimestampCache;
pub use vm_sim::PagedTimestampStore;
