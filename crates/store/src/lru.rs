//! An exact, O(1) least-recently-used cache over hashable keys.
//!
//! Built on a `HashMap` plus an intrusive doubly-linked list threaded through
//! an arena of entries (index-based links — no unsafe). Used by the POET-style
//! timestamp cache and the paged-memory simulator.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: u32 = u32::MAX;

struct Entry<K, V> {
    key: K,
    val: V,
    prev: u32,
    next: u32,
}

/// Fixed-capacity LRU cache.
pub struct LruCache<K, V> {
    map: HashMap<K, u32>,
    entries: Vec<Entry<K, V>>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Cache holding at most `capacity` entries (≥ 1).
    ///
    /// Pre-allocation is clamped (like the entry arena) so a pathological
    /// capacity — e.g. "effectively unbounded" expressed as `usize::MAX` —
    /// does not eagerly allocate; storage still grows on demand up to
    /// `capacity` entries.
    pub fn new(capacity: usize) -> LruCache<K, V> {
        assert!(capacity >= 1, "capacity must be positive");
        const PREALLOC_CAP: usize = 1 << 20;
        LruCache {
            map: HashMap::with_capacity(capacity.saturating_add(1).min(PREALLOC_CAP)),
            entries: Vec::with_capacity(capacity.min(PREALLOC_CAP)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// (hits, misses, evictions) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    fn unlink(&mut self, i: u32) {
        let (p, n) = {
            let e = &self.entries[i as usize];
            (e.prev, e.next)
        };
        if p != NIL {
            self.entries[p as usize].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.entries[n as usize].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let e = &mut self.entries[i as usize];
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.entries[old_head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Get a value, marking it most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                self.unlink(i);
                self.push_front(i);
                Some(&self.entries[i as usize].val)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Check for a key without touching recency or counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&i| &self.entries[i as usize].val)
    }

    /// Insert a value, evicting the LRU entry if at capacity. Returns the
    /// evicted `(key, value)` if any.
    pub fn insert(&mut self, key: K, val: V) -> Option<(K, V)> {
        if let Some(&i) = self.map.get(&key) {
            self.entries[i as usize].val = val;
            self.unlink(i);
            self.push_front(i);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let e = &mut self.entries[victim as usize];
            self.map.remove(&e.key);
            self.free.push(victim);
            self.evictions += 1;
            // Move out key/val by swapping placeholders is awkward without
            // Default; read them with replace-by-clone for the key and a
            // pointer move for the value via Vec index writes below.
            let old_key = e.key.clone();
            // Temporarily leave val in place; it is overwritten on reuse.
            evicted = Some((old_key, None::<V>));
        }
        let i = match self.free.pop() {
            Some(slot) => {
                let old = std::mem::replace(
                    &mut self.entries[slot as usize],
                    Entry {
                        key: key.clone(),
                        val,
                        prev: NIL,
                        next: NIL,
                    },
                );
                if let Some((k, _)) = evicted.take() {
                    evicted = Some((k, Some(old.val)));
                }
                slot
            }
            None => {
                self.entries.push(Entry {
                    key: key.clone(),
                    val,
                    prev: NIL,
                    next: NIL,
                });
                (self.entries.len() - 1) as u32
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted.and_then(|(k, v)| v.map(|v| (k, v)))
    }

    /// Remove everything, keeping counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        assert!(c.get(&1).is_none());
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&2), Some(&20));
        let (h, m, e) = c.stats();
        assert_eq!((h, m, e), (2, 1, 0));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.get(&1); // 2 is now LRU
        let ev = c.insert(3, "c");
        assert_eq!(ev, Some((2, "b")));
        assert!(c.peek(&2).is_none());
        assert!(c.peek(&1).is_some());
        assert!(c.peek(&3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), None);
        assert_eq!(c.peek(&1), Some(&11));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_one_thrashes() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        for k in 0..100 {
            c.insert(k, k);
            assert_eq!(c.len(), 1);
        }
        let (_, _, e) = c.stats();
        assert_eq!(e, 99);
        assert_eq!(c.peek(&99), Some(&99));
    }

    #[test]
    fn heavy_mixed_workload_is_consistent() {
        // Cross-check against a naive model.
        let mut c: LruCache<u64, u64> = LruCache::new(8);
        let mut model: Vec<u64> = Vec::new(); // recency order, front = MRU
        for step in 0..5000u64 {
            let k = (step * 7 + step / 3) % 23;
            if step % 3 == 0 {
                let hit_real = c.get(&k).copied();
                let hit_model = model.iter().position(|&x| x == k);
                match (hit_real, hit_model) {
                    (Some(v), Some(pos)) => {
                        assert_eq!(v, k * 2);
                        model.remove(pos);
                        model.insert(0, k);
                    }
                    (None, None) => {}
                    other => panic!("divergence at step {step}: {other:?}"),
                }
            } else {
                c.insert(k, k * 2);
                if let Some(pos) = model.iter().position(|&x| x == k) {
                    model.remove(pos);
                } else if model.len() == 8 {
                    model.pop();
                }
                model.insert(0, k);
            }
            assert_eq!(c.len(), model.len());
        }
    }

    #[test]
    fn huge_capacity_does_not_preallocate() {
        // Regression: `new` used to pass the raw capacity to
        // `HashMap::with_capacity` (and `capacity + 1` overflowed on
        // usize::MAX). A pathological capacity must construct instantly and
        // behave like an unbounded cache.
        let mut c: LruCache<u64, u64> = LruCache::new(usize::MAX);
        assert_eq!(c.capacity(), usize::MAX);
        for k in 0..10_000 {
            c.insert(k, k * 3);
        }
        assert_eq!(c.len(), 10_000);
        assert_eq!(c.get(&1234), Some(&3702));
        let (_, _, evictions) = c.stats();
        assert_eq!(evictions, 0, "nothing should ever be evicted");
    }

    #[test]
    fn clear_resets_contents() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        for k in 0..4 {
            c.insert(k, k);
        }
        c.clear();
        assert!(c.is_empty());
        c.insert(9, 9);
        assert_eq!(c.get(&9), Some(&9));
    }
}
