//! A capacity/byte-bounded ring of retained epoch snapshots.
//!
//! PR 2's pipeline publishes immutable, prefix-monotone snapshots and PR 5's
//! query path answers against the *newest* one. Time-travel queries (RepCl-style
//! replay, as-of precedence) need older epochs to stay reachable for a while.
//! The retainer keeps published snapshot handles in a ring bounded by an epoch
//! count and an optional byte budget; GC retires the oldest *unpinned* entries
//! first and never evicts the newest epoch, so the head of history is always
//! answerable. Pins are RAII guards: an in-flight query or a replication
//! catch-up pins the epoch it reads so GC under pressure cannot free it
//! mid-answer, and dropping the pin re-runs GC so deferred evictions happen
//! promptly.
//!
//! The retainer is generic over the snapshot type so the store layer does not
//! depend on the daemon's `Snapshot` struct.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::RwLock;

/// Metadata describing one retained epoch, as reported by [`EpochRetainer::list`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochInfo {
    pub epoch: u64,
    /// Number of delivered events covered by this epoch's snapshot.
    pub delivered: u64,
    /// Estimated resident bytes attributed to this entry.
    pub bytes: u64,
    pub pinned: bool,
}

struct Entry<T> {
    epoch: u64,
    delivered: u64,
    bytes: u64,
    pins: u32,
    value: Arc<T>,
}

struct Ring<T> {
    entries: VecDeque<Entry<T>>,
    total_bytes: u64,
}

/// Bounded ring of published epochs with pin/unpin and GC.
pub struct EpochRetainer<T> {
    ring: RwLock<Ring<T>>,
    retain_epochs: usize,
    retain_bytes: u64,
    retired: AtomicU64,
}

impl<T> EpochRetainer<T> {
    /// `retain_epochs` bounds how many epochs stay resident (minimum 1: the
    /// newest epoch is never evicted). `retain_bytes == 0` means no byte cap.
    pub fn new(retain_epochs: usize, retain_bytes: u64) -> EpochRetainer<T> {
        EpochRetainer {
            ring: RwLock::new(Ring {
                entries: VecDeque::new(),
                total_bytes: 0,
            }),
            retain_epochs: retain_epochs.max(1),
            retain_bytes,
            retired: AtomicU64::new(0),
        }
    }

    /// Record a newly published epoch, then GC anything the caps push out.
    /// Epochs must be inserted in increasing order (publishes are serialized
    /// by the worker loop); a stale or duplicate epoch is ignored.
    pub fn insert(&self, epoch: u64, delivered: u64, bytes: u64, value: Arc<T>) {
        let mut ring = self.ring.write();
        if let Some(back) = ring.entries.back() {
            if back.epoch >= epoch {
                return;
            }
        }
        ring.total_bytes += bytes;
        ring.entries.push_back(Entry {
            epoch,
            delivered,
            bytes,
            pins: 0,
            value,
        });
        self.gc_locked(&mut ring);
    }

    /// Evict oldest-first while over either cap, skipping pinned entries and
    /// never evicting the newest epoch. Deferred evictions (entries skipped
    /// because they were pinned) are retried on the next insert or unpin.
    fn gc_locked(&self, ring: &mut Ring<T>) {
        let mut idx = 0;
        while ring.entries.len() > 1 && idx < ring.entries.len() - 1 && self.over_caps(ring) {
            if ring.entries[idx].pins > 0 {
                idx += 1;
                continue;
            }
            let gone = ring.entries.remove(idx).expect("index checked");
            ring.total_bytes -= gone.bytes;
            self.retired.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn over_caps(&self, ring: &Ring<T>) -> bool {
        ring.entries.len() > self.retain_epochs
            || (self.retain_bytes > 0 && ring.total_bytes > self.retain_bytes)
    }

    /// Snapshot handle for `epoch`, if still retained. The caller holds the
    /// `Arc` for the duration of a single answer; use [`EpochRetainer::pin`]
    /// to keep the epoch itself retained across multiple requests.
    pub fn get(&self, epoch: u64) -> Option<Arc<T>> {
        let ring = self.ring.read();
        ring.entries
            .iter()
            .find(|e| e.epoch == epoch)
            .map(|e| Arc::clone(&e.value))
    }

    /// Pin `epoch` against GC. Returns `None` if it is already retired.
    pub fn pin(self: &Arc<Self>, epoch: u64) -> Option<PinnedEpoch<T>> {
        let mut ring = self.ring.write();
        let entry = ring.entries.iter_mut().find(|e| e.epoch == epoch)?;
        entry.pins += 1;
        let value = Arc::clone(&entry.value);
        Some(PinnedEpoch {
            retainer: Arc::clone(self),
            epoch,
            value,
        })
    }

    fn unpin(&self, epoch: u64) {
        let mut ring = self.ring.write();
        if let Some(entry) = ring.entries.iter_mut().find(|e| e.epoch == epoch) {
            entry.pins = entry.pins.saturating_sub(1);
        }
        // A deferred eviction may now be possible.
        self.gc_locked(&mut ring);
    }

    /// All retained epochs, oldest first.
    pub fn list(&self) -> Vec<EpochInfo> {
        let ring = self.ring.read();
        ring.entries
            .iter()
            .map(|e| EpochInfo {
                epoch: e.epoch,
                delivered: e.delivered,
                bytes: e.bytes,
                pinned: e.pins > 0,
            })
            .collect()
    }

    /// Delivered offset of the oldest retained epoch — the WAL retirement
    /// floor: segments at or beyond this offset are still covered by a
    /// retained epoch and must not be reclaimed.
    pub fn oldest_delivered(&self) -> Option<u64> {
        let ring = self.ring.read();
        ring.entries.front().map(|e| e.delivered)
    }

    /// Number of epochs currently resident (gauge).
    pub fn retained(&self) -> u64 {
        self.ring.read().entries.len() as u64
    }

    /// Cumulative count of epochs GC has retired (counter).
    pub fn retired(&self) -> u64 {
        self.retired.load(Ordering::Relaxed)
    }

    /// Estimated resident bytes across all retained entries.
    pub fn resident_bytes(&self) -> u64 {
        self.ring.read().total_bytes
    }
}

/// RAII pin: the epoch stays retained until the guard drops.
pub struct PinnedEpoch<T> {
    retainer: Arc<EpochRetainer<T>>,
    epoch: u64,
    value: Arc<T>,
}

impl<T> PinnedEpoch<T> {
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn value(&self) -> &Arc<T> {
        &self.value
    }
}

impl<T> Drop for PinnedEpoch<T> {
    fn drop(&mut self) {
        self.retainer.unpin(self.epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retainer(cap: usize, bytes: u64) -> Arc<EpochRetainer<u64>> {
        Arc::new(EpochRetainer::new(cap, bytes))
    }

    fn fill(r: &EpochRetainer<u64>, epochs: std::ops::RangeInclusive<u64>) {
        for e in epochs {
            r.insert(e, e * 10, 100, Arc::new(e));
        }
    }

    #[test]
    fn capacity_cap_evicts_oldest_first() {
        let r = retainer(3, 0);
        fill(&r, 1..=5);
        assert_eq!(r.retained(), 3);
        assert_eq!(r.retired(), 2);
        assert!(r.get(1).is_none());
        assert!(r.get(2).is_none());
        for e in 3..=5 {
            assert_eq!(*r.get(e).expect("retained"), e);
        }
        assert_eq!(r.oldest_delivered(), Some(30));
    }

    #[test]
    fn byte_cap_evicts_independently_of_count() {
        let r = retainer(100, 250);
        fill(&r, 1..=4); // 400 bytes > 250 cap
        assert_eq!(r.retained(), 2);
        assert_eq!(r.resident_bytes(), 200);
        assert_eq!(r.retired(), 2);
    }

    #[test]
    fn newest_epoch_never_evicted() {
        let r = retainer(1, 50);
        r.insert(1, 10, 1_000_000, Arc::new(1));
        // Over both caps, but it's the only (and newest) entry.
        assert_eq!(r.retained(), 1);
        r.insert(2, 20, 1_000_000, Arc::new(2));
        assert_eq!(r.retained(), 1);
        assert_eq!(*r.get(2).expect("newest retained"), 2);
    }

    #[test]
    fn pinned_epoch_survives_pressure_until_unpin() {
        let r = retainer(1, 0);
        fill(&r, 1..=1);
        let pin = r.pin(1).expect("epoch 1 retained");
        fill(&r, 2..=6);
        // Epoch 1 is pinned: GC skips it even though it is far over cap.
        assert_eq!(*r.get(1).expect("pinned survives"), 1);
        assert_eq!(*pin.value().as_ref(), 1);
        assert_eq!(r.retained(), 2, "pin forces ring over its cap");
        drop(pin);
        // Deferred eviction runs on unpin.
        assert!(r.get(1).is_none(), "unpinned epoch collected");
        assert_eq!(r.retained(), 1);
    }

    #[test]
    fn pin_retired_epoch_fails() {
        let r = retainer(2, 0);
        fill(&r, 1..=5);
        assert!(r.pin(1).is_none());
        assert!(r.pin(5).is_some());
    }

    #[test]
    fn stale_insert_ignored() {
        let r = retainer(4, 0);
        fill(&r, 1..=3);
        r.insert(2, 999, 1, Arc::new(0));
        assert_eq!(*r.get(2).expect("original entry"), 2);
        assert_eq!(r.retained(), 3);
    }

    #[test]
    fn list_reports_oldest_first_with_pins() {
        let r = retainer(4, 0);
        fill(&r, 5..=7);
        let _pin = r.pin(6).expect("retained");
        let infos = r.list();
        assert_eq!(
            infos.iter().map(|i| i.epoch).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        assert_eq!(
            infos.iter().map(|i| i.pinned).collect::<Vec<_>>(),
            vec![false, true, false]
        );
        assert_eq!(infos[0].delivered, 50);
    }
}
