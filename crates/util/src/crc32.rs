//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) over byte slices.
//!
//! The durability layer (`cts-daemon`'s write-ahead log and checkpoints)
//! protects every record with a CRC so that a torn tail — a crash mid-write —
//! is *detected and truncated* rather than replayed as garbage. The
//! implementation is the standard reflected table-driven one; the table is
//! built at first use and the keystream is pinned by the classic
//! known-answer vector (`"123456789"` → `0xCBF4_3926`).

use std::sync::OnceLock;

/// Reflected polynomial of CRC-32/ISO-HDLC (zlib, gzip, PNG, Ethernet).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        t
    })
}

/// CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// Incremental CRC-32 (for streaming multiple slices into one checksum).
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Absorb more bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything absorbed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The check value every CRC-32/ISO-HDLC implementation must produce.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = b"write-ahead log record".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
