//! Deterministic ChaCha8 PRNG and a minimal `Rng`-style trait.
//!
//! The generator is the ChaCha stream cipher (D. J. Bernstein) with 8
//! rounds, in the original DJB configuration: a 256-bit key, a 64-bit block
//! counter (state words 12–13) and a 64-bit stream id (words 14–15, always 0
//! here). [`ChaCha8Rng::seed_from_u64`] expands a 64-bit seed to the 256-bit
//! key with the PCG32 output function, the same expansion `rand_core 0.6`
//! uses, so historical `seed_from_u64(seed)` call sites keep their meaning.
//!
//! The keystream is pinned by known-answer tests below (zero-key vectors
//! cross-checked against the published eSTREAM ChaCha8 vectors and an
//! independent reference implementation), so any accidental change to the
//! generator — and therefore to every synthetic trace in the standard suite
//! — fails loudly.

use std::ops::Range;

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// One 64-byte ChaCha block with `rounds` rounds (8 for this RNG), as 16
/// little-endian output words.
fn chacha_block(key: &[u32; 8], counter: u64, stream: u64, rounds: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CHACHA_CONST);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = stream as u32;
    state[15] = (stream >> 32) as u32;
    let mut w = state;
    for _ in 0..rounds / 2 {
        quarter_round(&mut w, 0, 4, 8, 12);
        quarter_round(&mut w, 1, 5, 9, 13);
        quarter_round(&mut w, 2, 6, 10, 14);
        quarter_round(&mut w, 3, 7, 11, 15);
        quarter_round(&mut w, 0, 5, 10, 15);
        quarter_round(&mut w, 1, 6, 11, 12);
        quarter_round(&mut w, 2, 7, 8, 13);
        quarter_round(&mut w, 3, 4, 9, 14);
    }
    for i in 0..16 {
        w[i] = w[i].wrapping_add(state[i]);
    }
    w
}

/// A minimal RNG interface: the two raw draws plus the derived samplers the
/// workload generators use. Implemented by [`ChaCha8Rng`]; generic code can
/// take `&mut impl Rng`.
pub trait Rng {
    fn next_u32(&mut self) -> u32;

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }

    /// Uniform draw from a half-open range (unbiased, Lemire rejection).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli draw: `true` with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        if p >= 1.0 {
            return true;
        }
        // 64-bit fixed-point threshold; p < 1 so the product fits in u64.
        self.next_u64() < (p * (u64::MAX as f64 + 1.0)) as u64
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for u32 {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<u32>) -> u32 {
        assert!(range.start < range.end, "gen_range: empty range");
        let n = range.end - range.start;
        // Lemire's multiply-shift with rejection of the biased low zone.
        let mut m = (rng.next_u32() as u64) * (n as u64);
        if (m as u32) < n {
            let t = n.wrapping_neg() % n;
            while (m as u32) < t {
                m = (rng.next_u32() as u64) * (n as u64);
            }
        }
        range.start + (m >> 32) as u32
    }
}

impl SampleUniform for u64 {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let n = range.end - range.start;
        let mut m = (rng.next_u64() as u128) * (n as u128);
        if (m as u64) < n {
            let t = n.wrapping_neg() % n;
            while (m as u64) < t {
                m = (rng.next_u64() as u128) * (n as u128);
            }
        }
        range.start + (m >> 64) as u64
    }
}

impl SampleUniform for usize {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<usize>) -> usize {
        u64::sample_range(rng, range.start as u64..range.end as u64) as usize
    }
}

/// The workspace's deterministic PRNG: ChaCha with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    /// Block counter of the *next* block to generate.
    counter: u64,
    buf: [u32; 16],
    /// Consumed words of `buf`; 16 means empty.
    pos: usize,
}

impl ChaCha8Rng {
    /// Construct from a full 256-bit key (little-endian byte order, matching
    /// the ChaCha specification).
    pub fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            pos: 16,
        }
    }

    /// Expand a 64-bit seed to the 256-bit key with the PCG32 output
    /// function (`rand_core 0.6`'s `seed_from_u64` expansion), so existing
    /// seeds keep producing the streams the suite pins.
    pub fn seed_from_u64(mut state: u64) -> ChaCha8Rng {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        ChaCha8Rng::from_seed(seed)
    }

    #[inline]
    fn refill(&mut self) {
        self.buf = chacha_block(&self.key, self.counter, 0, 8);
        self.counter = self
            .counter
            .checked_add(1)
            .expect("ChaCha8Rng: 2^64 blocks exhausted");
        self.pos = 0;
    }
}

impl Rng for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.pos == 16 {
            self.refill();
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// The raw block function at 20 rounds reproduces the universally
    /// published ChaCha20 zero-key/zero-nonce keystream (block 0). This pins
    /// the core permutation independently of the round count.
    #[test]
    fn kat_chacha20_core_zero_key() {
        let block = chacha_block(&[0; 8], 0, 0, 20);
        let mut bytes = Vec::new();
        for w in block {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(
            hex(&bytes),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7\
             da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586"
        );
    }

    /// ChaCha8 zero-key keystream, blocks 0 and 1 (eSTREAM vector set,
    /// cross-checked against an independent reference implementation).
    #[test]
    fn kat_chacha8_zero_key_keystream() {
        let mut rng = ChaCha8Rng::from_seed([0; 32]);
        let mut bytes = [0u8; 128];
        rng.fill_bytes(&mut bytes);
        assert_eq!(
            hex(&bytes[..64]),
            "3e00ef2f895f40d67f5bb8e81f09a5a12c840ec3ce9a7f3b181be188ef711a1e\
             984ce172b9216f419f445367456d5619314a42a3da86b001387bfdb80e0cfe42"
        );
        assert_eq!(
            hex(&bytes[64..]),
            "d2aefa0deaa5c151bf0adb6c01f2a5adc0fd581259f9a2aadcf20f8fd566a26b\
             5032ec38bbc5da98ee0c6f568b872a65a08abf251deb21bb4b56e5d8821e68aa"
        );
    }

    /// The `seed_from_u64` key expansion and the resulting keystreams for
    /// the seeds the standard suite leans on. These are the vectors that
    /// freeze the whole synthetic corpus.
    #[test]
    fn kat_seed_from_u64_streams() {
        let cases: [(u64, &str, [u32; 8]); 4] = [
            (
                0,
                "ecf273f981b5cd4587f0467306ad6cadd0d0a3e33317e767f29bea72d78a7dfe",
                [
                    0xa79a3b6c, 0xb585f767, 0xbad8c037, 0x7746a55f, 0x81e2a6e6, 0xb2fb0d32,
                    0x8f9b887c, 0x0f6760a4,
                ],
            ),
            (
                1,
                "ead81d725d26104e899c3bf842ce782ebad303da9997d2c2120256ac7366fb1b",
                [
                    0x8ca40db1, 0x67094cea, 0xfc0e8e6b, 0x149406d8, 0x36070665, 0x98b82b03,
                    0x63080d42, 0x3825a7dc,
                ],
            ),
            (
                42,
                "a48fa17b58323d0aeab8a1cc690114b82b8cc87518b4f7548d446ea1e4df20f2",
                [
                    0x395d5ba1, 0xae90bfb5, 0x25799188, 0xf3453fc6, 0xc5b6538c, 0x6d71b708,
                    0x58166752, 0xa09ab2f9,
                ],
            ),
            (
                0xdead_beef,
                "2da11cc6304378008334e6ba587f94db281f8e3ea27b96f1722042d2e4410782",
                [
                    0x43ec8df9, 0xff01307f, 0x2dc1b3db, 0x946b5cc5, 0xc6284944, 0x017ff25e,
                    0xef521b39, 0x408827c5,
                ],
            ),
        ];
        for (seed, want_key, want_words) in cases {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut key_bytes = Vec::new();
            for w in rng.key {
                key_bytes.extend_from_slice(&w.to_le_bytes());
            }
            assert_eq!(hex(&key_bytes), want_key, "key for seed {seed}");
            for (i, want) in want_words.into_iter().enumerate() {
                assert_eq!(rng.next_u32(), want, "seed {seed}, word {i}");
            }
        }
    }

    #[test]
    fn blocks_advance_the_counter() {
        // Drawing 16 words consumes block 0; word 16 must equal the first
        // word of the independently computed block 1.
        let mut rng = ChaCha8Rng::from_seed([0; 32]);
        for _ in 0..16 {
            rng.next_u32();
        }
        let block1 = chacha_block(&[0; 8], 1, 0, 8);
        assert_eq!(rng.next_u32(), block1[0]);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(7);
            (0..100).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(7);
            (0..100).map(|_| r.next_u32()).collect()
        };
        let c: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(8);
            (0..100).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fill_bytes_matches_word_stream_across_boundaries() {
        for len in [1usize, 3, 4, 7, 63, 64, 65, 130] {
            let mut by_bytes = vec![0u8; len];
            ChaCha8Rng::seed_from_u64(9).fill_bytes(&mut by_bytes);
            let mut r = ChaCha8Rng::seed_from_u64(9);
            let mut by_words = Vec::with_capacity(len + 4);
            while by_words.len() < len {
                by_words.extend_from_slice(&r.next_u32().to_le_bytes());
            }
            assert_eq!(by_bytes, by_words[..len], "len {len}");
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let x = r.gen_range(10u32..15);
            assert!((10..15).contains(&x));
            seen[(x - 10) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values should appear: {seen:?}"
        );
        // Single-value range needs no entropy decisions.
        assert_eq!(r.gen_range(7u32..8), 7);
        assert_eq!(r.gen_range(0usize..1), 0);
        assert_eq!(r.gen_range(u64::MAX - 1..u64::MAX), u64::MAX - 1);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        ChaCha8Rng::seed_from_u64(0).gen_range(5u32..5);
    }

    #[test]
    fn gen_bool_extremes_and_frequency() {
        let mut r = ChaCha8Rng::seed_from_u64(11);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!(
            (2_000..3_000).contains(&hits),
            "p=0.25 over 10k draws gave {hits}"
        );
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = ChaCha8Rng::seed_from_u64(13);
        for _ in 0..1_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
