//! # cts-util — the in-repo, zero-dependency substrate
//!
//! The workspace must build, test, and bench on a network-isolated machine:
//! no crates-io dependencies, no vendored sources. This crate supplies the
//! three pieces of infrastructure the rest of the workspace previously pulled
//! from external crates:
//!
//! - [`prng`]: a ChaCha8 stream-cipher PRNG with `seed_from_u64`-compatible
//!   seeding and a minimal [`prng::Rng`] trait. All workload generation runs
//!   on it, and its keystream is pinned by committed known-answer vectors so
//!   the 54-computation standard suite stays bit-deterministic across
//!   refactors (the replay-clock reproducibility discipline).
//! - [`bench`]: a micro-benchmark harness (warmup + timed samples,
//!   median/p95, JSON report) replacing the Criterion benches.
//! - [`check`]: a seeded property-test case runner (shrink-free failure
//!   reporting) replacing proptest.
//! - [`hist`]: a lock-free log₂-bucketed latency histogram for live
//!   services (the `cts-daemon` metrics path), where the closed-loop
//!   [`bench`] harness does not fit.
//! - [`crc32`]: CRC-32/ISO-HDLC for the daemon's write-ahead log and
//!   checkpoint records (torn tails must be detected, not replayed).
//! - [`failpoint`]: the [`failpoint::DurableSink`] abstraction over
//!   `write + fdatasync`, and [`failpoint::FailpointFs`] — a writer that
//!   simulates a crash after a byte budget, so recovery paths are tested
//!   deterministically instead of by killing processes.

pub mod bench;
pub mod check;
pub mod crc32;
pub mod failpoint;
pub mod hist;
pub mod prng;
