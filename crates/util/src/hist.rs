//! A lock-free latency histogram for live services.
//!
//! The [`bench`](crate::bench) harness measures closed-loop micro-benchmarks;
//! a *server* needs the dual: many threads recording latencies concurrently
//! while another thread reads percentiles, with no locking on the record
//! path. [`AtomicHistogram`] uses power-of-two buckets (one per leading-bit
//! position of the nanosecond value), so recording is one `fetch_add` and the
//! whole structure is a fixed 64×8 bytes. Percentiles are approximate —
//! bucket boundaries are exact powers of two and the reported value is the
//! geometric midpoint of the winning bucket — which is plenty for p50/p95
//! service-latency reporting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible leading-bit position of a `u64`.
const BUCKETS: usize = 64;

/// A fixed-size, log₂-bucketed histogram safe for concurrent recording.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index of a value: 0 for 0 and 1, else the leading-bit position.
    #[inline]
    fn bucket_of(value: u64) -> usize {
        (63 - value.max(1).leading_zeros()) as usize
    }

    /// Record one sample (e.g. nanoseconds). Lock-free; any thread.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of all recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Approximate `p`-th percentile (`0.0 ..= 100.0`): the geometric midpoint
    /// of the bucket containing the `p`-th ranked sample. Returns 0 if empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the target sample, 1-based, clamped into [1, total].
        let rank = ((p / 100.0 * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                // Geometric-ish midpoint, avoiding overflow.
                return lo / 2 + hi / 2;
            }
        }
        unreachable!("rank is within total");
    }

    /// Convenience: `(p50, p95)` in one call.
    pub fn p50_p95(&self) -> (u64, u64) {
        (self.percentile(50.0), self.percentile(95.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = AtomicHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(AtomicHistogram::bucket_of(0), 0);
        assert_eq!(AtomicHistogram::bucket_of(1), 0);
        assert_eq!(AtomicHistogram::bucket_of(2), 1);
        assert_eq!(AtomicHistogram::bucket_of(3), 1);
        assert_eq!(AtomicHistogram::bucket_of(4), 2);
        assert_eq!(AtomicHistogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn percentiles_are_order_of_magnitude_correct() {
        let h = AtomicHistogram::new();
        // 90 fast samples (~1 µs), 10 slow ones (~1 ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let (p50, p95) = h.p50_p95();
        assert!((512..4096).contains(&p50), "p50 = {p50}");
        assert!((524_288..2_097_152).contains(&p95), "p95 = {p95}");
        assert_eq!(h.count(), 100);
        let mean = h.mean();
        assert!((100_000.0..200_000.0).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(AtomicHistogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i * (t + 1));
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert!(h.percentile(50.0) > 0);
    }
}
