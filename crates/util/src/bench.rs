//! A small micro-benchmark harness: warmup, N timed samples, median/p95,
//! and a JSON report (`BENCH_*.json`-style) — the in-repo replacement for
//! Criterion, so benches run on a network-isolated machine.
//!
//! Model: each *sample* runs the measured closure `iters_per_sample` times
//! and records the mean nanoseconds per iteration; statistics are taken over
//! the samples. The iteration count is auto-calibrated so one sample takes
//! roughly [`Bencher::target_sample_ns`].

use std::hint::black_box;
use std::time::Instant;

/// Statistics of one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Benchmark group (e.g. `"fm_engine_accept"`).
    pub group: String,
    /// Case name within the group (e.g. `"n200"`).
    pub name: String,
    /// Timed samples taken (after warmup).
    pub samples: usize,
    /// Iterations averaged inside each sample.
    pub iters_per_sample: u64,
    pub min_ns: f64,
    pub median_ns: f64,
    pub p95_ns: f64,
    pub mean_ns: f64,
}

impl BenchEntry {
    /// `"group/name"`, the stable identifier used in reports.
    pub fn id(&self) -> String {
        format!("{}/{}", self.group, self.name)
    }
}

/// Harness configuration plus collected results.
pub struct Bencher {
    /// Target wall time per sample, used to calibrate iteration counts.
    pub target_sample_ns: u64,
    /// Timed samples per benchmark.
    pub samples: usize,
    /// Warmup samples (run, discarded).
    pub warmup_samples: usize,
    entries: Vec<BenchEntry>,
}

impl Bencher {
    /// The default configuration: 25 samples of ~10 ms after 3 warmups.
    pub fn standard() -> Bencher {
        Bencher {
            target_sample_ns: 10_000_000,
            samples: 25,
            warmup_samples: 3,
            entries: Vec::new(),
        }
    }

    /// A fast smoke configuration for CI and `--quick` runs.
    pub fn quick() -> Bencher {
        Bencher {
            target_sample_ns: 1_000_000,
            samples: 7,
            warmup_samples: 1,
            entries: Vec::new(),
        }
    }

    /// Measure `f`, recording the result under `group`/`name`. The closure's
    /// return value is passed through [`black_box`] so its computation cannot
    /// be optimized away.
    pub fn bench<T, F: FnMut() -> T>(&mut self, group: &str, name: &str, mut f: F) -> &BenchEntry {
        // Calibrate: time a single iteration, then size samples to target.
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1) as u64;
        let iters = (self.target_sample_ns / once_ns).clamp(1, 1_000_000);

        let mut per_iter = Vec::with_capacity(self.samples);
        for round in 0..self.warmup_samples + self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            if round >= self.warmup_samples {
                per_iter.push(ns);
            }
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let entry = BenchEntry {
            group: group.to_string(),
            name: name.to_string(),
            samples: per_iter.len(),
            iters_per_sample: iters,
            min_ns: per_iter[0],
            median_ns: percentile(&per_iter, 50.0),
            p95_ns: percentile(&per_iter, 95.0),
            mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
        };
        self.entries.push(entry);
        self.entries.last().unwrap()
    }

    /// All results recorded so far.
    pub fn entries(&self) -> &[BenchEntry] {
        &self.entries
    }

    /// Append an externally measured entry (e.g. a load generator's
    /// service-latency percentiles) so it appears in the same
    /// `cts-bench/1` report as closed-loop benches.
    pub fn record_entry(&mut self, entry: BenchEntry) {
        self.entries.push(entry);
    }

    /// The full report as a JSON document:
    /// `{"schema": "cts-bench/1", "host": {"cpus": N}, "benches": [...]}`.
    /// `host.cpus` (available parallelism where the report was recorded)
    /// lets `bench_gate.py` scale parallel-speedup requirements to what
    /// the recording host could physically deliver.
    pub fn to_json(&self) -> String {
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut out = format!(
            "{{\n  \"schema\": \"cts-bench/1\",\n  \"host\": {{\"cpus\": {cpus}}},\n  \"benches\": [\n"
        );
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"group\": {}, \"name\": {}, \"samples\": {}, \
                 \"iters_per_sample\": {}, \"min_ns\": {:.1}, \"median_ns\": {:.1}, \
                 \"p95_ns\": {:.1}, \"mean_ns\": {:.1}}}{}\n",
                json_string(&e.group),
                json_string(&e.name),
                e.samples,
                e.iters_per_sample,
                e.min_ns,
                e.median_ns,
                e.p95_ns,
                e.mean_ns,
                if i + 1 < self.entries.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Minimal JSON string encoder (the identifiers here are ASCII, but stay
/// correct for anything).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_ordered_stats() {
        let mut b = Bencher {
            target_sample_ns: 10_000,
            samples: 5,
            warmup_samples: 1,
            entries: Vec::new(),
        };
        let mut x = 0u64;
        b.bench("g", "sum", || {
            for i in 0..100u64 {
                x = x.wrapping_add(i);
            }
            x
        });
        let e = &b.entries()[0];
        assert_eq!(e.id(), "g/sum");
        assert_eq!(e.samples, 5);
        assert!(e.min_ns > 0.0);
        assert!(e.min_ns <= e.median_ns);
        assert!(e.median_ns <= e.p95_ns);
    }

    #[test]
    fn json_report_shape() {
        let mut b = Bencher::quick();
        b.bench("grp", "a\"b", || 1 + 1);
        let j = b.to_json();
        assert!(j.contains("\"schema\": \"cts-bench/1\""));
        assert!(j.contains("\"group\": \"grp\""));
        assert!(j.contains("a\\\"b"));
        assert!(j.trim_end().ends_with('}'));
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 95.0), 5.0);
    }
}
