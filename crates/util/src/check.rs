//! A hand-rolled property-test runner: many seeded cases, shrink-free
//! failure reporting. The in-repo replacement for proptest.
//!
//! Each case gets its own [`ChaCha8Rng`] derived from `(base_seed, case)`,
//! so a failure report's case number is enough to replay the exact input:
//!
//! ```
//! use cts_util::check::run_cases;
//! use cts_util::prng::Rng;
//!
//! run_cases("addition commutes", 64, 0xC75, |rng| {
//!     let (a, b) = (rng.next_u32() as u64, rng.next_u32() as u64);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::prng::ChaCha8Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Derive the per-case RNG for `(base_seed, case)` — public so a failing
/// case can be replayed in isolation from the number in the report.
pub fn case_rng(base_seed: u64, case: u64) -> ChaCha8Rng {
    // SplitMix64-style mix keeps neighbouring cases uncorrelated.
    let mut z = base_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ChaCha8Rng::seed_from_u64(z ^ (z >> 31))
}

/// Run `cases` seeded cases of `property`. On the first panic inside the
/// property, panics with the property name, the case number and base seed
/// (enough to replay via [`case_rng`]), and the original message — no
/// shrinking, the full failing input is deterministic.
pub fn run_cases<F>(name: &str, cases: u64, base_seed: u64, property: F)
where
    F: Fn(&mut ChaCha8Rng),
{
    for case in 0..cases {
        let mut rng = case_rng(base_seed, case);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            panic!(
                "property '{name}' failed at case {case}/{cases} (base seed {base_seed:#x}): {}",
                panic_message(payload.as_ref())
            );
        }
    }
}

/// Best-effort extraction of a panic payload's message. Pass the payload's
/// trait object itself (`payload.as_ref()` on the `Box` from
/// `catch_unwind`), not a reference to the `Box` — the `Box` would be
/// unsize-coerced into a fresh `dyn Any` and every downcast would miss.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::Rng;

    #[test]
    fn passing_property_runs_all_cases() {
        let n = std::cell::Cell::new(0u64);
        run_cases("ranges stay in bounds", 32, 2, |rng| {
            n.set(n.get() + 1);
            let hi = 1 + rng.gen_range(1u32..100);
            assert!(rng.gen_range(0..hi) < hi);
        });
        assert_eq!(n.get(), 32);
    }

    #[test]
    fn failure_reports_case_and_seed() {
        let err = catch_unwind(|| {
            run_cases("always fails", 8, 0xABC, |_| panic!("boom 42"));
        })
        .unwrap_err();
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("always fails"), "{msg}");
        assert!(msg.contains("case 0/8"), "{msg}");
        assert!(msg.contains("0xabc"), "{msg}");
        assert!(msg.contains("boom 42"), "{msg}");
    }

    #[test]
    fn case_rngs_differ_and_replay() {
        let a: Vec<u32> = {
            let mut r = case_rng(5, 0);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = case_rng(5, 1);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let a2: Vec<u32> = {
            let mut r = case_rng(5, 0);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }
}
