//! Fault injection for durability tests: a file writer that "crashes" after
//! a budgeted number of bytes.
//!
//! Crash-recovery code paths (torn WAL tails, half-written checkpoints) are
//! impossible to exercise deterministically by killing processes. Instead,
//! tests write through a [`FailpointFs`]: it forwards writes to a real file
//! until a byte budget is exhausted, then *partially applies* the write that
//! crosses the budget and fails every operation afterwards — exactly the
//! on-disk state a power cut mid-`write(2)` leaves behind. Recovery code is
//! then pointed at the surviving file.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// A sink the write-ahead log can write to: ordinary writes plus an
/// explicit durability barrier. [`File`] is the production implementation;
/// [`FailpointFs`] is the test double.
pub trait DurableSink: Write {
    /// Flush written data to stable storage (`fdatasync`-equivalent).
    fn sync_data(&mut self) -> io::Result<()>;
}

impl DurableSink for File {
    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }
}

/// In-memory sink for benchmarks that want to measure codec cost without
/// touching a device (sync is a no-op).
impl DurableSink for Vec<u8> {
    fn sync_data(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Boxed sinks forward, so callers can pick the production [`File`] or the
/// [`FailpointFs`] test double at runtime.
impl<S: DurableSink + ?Sized> DurableSink for Box<S> {
    fn sync_data(&mut self) -> io::Result<()> {
        (**self).sync_data()
    }
}

/// A file writer that simulates a crash after `budget` bytes: the write
/// crossing the budget is truncated (a torn record on disk), and every
/// subsequent write or sync fails with [`io::ErrorKind::Other`].
pub struct FailpointFs {
    file: File,
    /// Bytes still allowed through; `None` once the failpoint has tripped.
    remaining: Option<u64>,
    tripped: bool,
}

impl FailpointFs {
    /// Create (truncating) `path`, allowing `budget` bytes before the
    /// simulated crash.
    pub fn create(path: &Path, budget: u64) -> io::Result<FailpointFs> {
        Ok(FailpointFs {
            file: File::create(path)?,
            remaining: Some(budget),
            tripped: false,
        })
    }

    /// Has the simulated crash happened yet?
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    fn crash_error() -> io::Error {
        io::Error::other("failpoint: simulated crash")
    }
}

impl Write for FailpointFs {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.tripped {
            return Err(Self::crash_error());
        }
        let budget = self.remaining.unwrap_or(0);
        if (buf.len() as u64) <= budget {
            self.remaining = Some(budget - buf.len() as u64);
            return self.file.write(buf);
        }
        // The write that crosses the budget: apply the surviving prefix
        // (the torn tail), then trip.
        self.tripped = true;
        self.remaining = None;
        let keep = budget as usize;
        if keep > 0 {
            self.file.write_all(&buf[..keep])?;
            let _ = self.file.flush();
        }
        Err(Self::crash_error())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.tripped {
            return Err(Self::crash_error());
        }
        self.file.flush()
    }
}

impl DurableSink for FailpointFs {
    fn sync_data(&mut self) -> io::Result<()> {
        if self.tripped {
            return Err(Self::crash_error());
        }
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cts-failpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn writes_within_budget_pass_through() {
        let path = tmp("within.bin");
        let mut fp = FailpointFs::create(&path, 16).unwrap();
        fp.write_all(b"0123456789").unwrap();
        fp.sync_data().unwrap();
        assert!(!fp.tripped());
        drop(fp);
        assert_eq!(std::fs::read(&path).unwrap(), b"0123456789");
    }

    #[test]
    fn crossing_write_is_torn_and_everything_after_fails() {
        let path = tmp("torn.bin");
        let mut fp = FailpointFs::create(&path, 4).unwrap();
        let err = fp.write_all(b"ABCDEFGH").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(fp.tripped());
        assert!(fp.write_all(b"x").is_err());
        assert!(fp.sync_data().is_err());
        drop(fp);
        // The torn prefix survived on disk.
        assert_eq!(std::fs::read(&path).unwrap(), b"ABCD");
    }

    #[test]
    fn zero_budget_tears_at_the_first_byte() {
        let path = tmp("zero.bin");
        let mut fp = FailpointFs::create(&path, 0).unwrap();
        assert!(fp.write_all(b"A").is_err());
        drop(fp);
        assert_eq!(std::fs::read(&path).unwrap(), b"");
    }
}
