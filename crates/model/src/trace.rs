//! Immutable, validated traces in delivery order.

use crate::event::{Event, EventId, EventIndex, EventKind, ProcessId};

/// The event sequence handed to [`Trace::from_delivery_order`] violates the
/// delivery-order invariants (per-process order, sends before receives, sync
/// halves adjacent, process ids in range).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InvalidDeliveryOrder;

impl std::fmt::Display for InvalidDeliveryOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event sequence is not a valid delivery order")
    }
}

impl std::error::Error for InvalidDeliveryOrder {}

/// An immutable parallel-computation trace.
///
/// The global event sequence is a **delivery order**: a linearization of the
/// happened-before partial order in which
///
/// - events of one process appear in increasing [`EventIndex`] order,
/// - every receive appears after its matching send, and
/// - the two halves of a synchronous pair appear adjacently.
///
/// This is exactly the order in which a central monitoring entity can consume
/// events for *dynamic* (online) timestamping. Traces are produced by
/// [`crate::TraceBuilder`], which enforces these invariants.
#[derive(Clone, Debug)]
pub struct Trace {
    name: String,
    num_processes: u32,
    /// All events in delivery order.
    events: Vec<Event>,
    /// `delivery_pos[p][i]` = position in `events` of event `(p, i+1)`.
    delivery_pos: Vec<Vec<u32>>,
}

impl Trace {
    /// Construct directly from parts. Intended for [`crate::TraceBuilder`] and
    /// deserialization; invariants are `debug_assert`ed, not revalidated.
    pub(crate) fn from_parts(name: String, num_processes: u32, events: Vec<Event>) -> Trace {
        let mut delivery_pos: Vec<Vec<u32>> = vec![Vec::new(); num_processes as usize];
        for (pos, ev) in events.iter().enumerate() {
            let per = &mut delivery_pos[ev.process().idx()];
            debug_assert_eq!(per.len(), ev.index().zero_based());
            per.push(pos as u32);
        }
        Trace {
            name,
            num_processes,
            events,
            delivery_pos,
        }
    }

    /// Construct a trace from an event sequence observed in delivery order —
    /// the entry point for consumers that *assemble* an order at run time (a
    /// monitoring daemon's causal-delivery pipeline, a deserializer) rather
    /// than building one with [`crate::TraceBuilder`].
    ///
    /// Validates the full delivery-order invariant set
    /// ([`crate::linearize::is_valid_delivery_order`]): per-process sequence
    /// order, receives after their sends, sync halves adjacent, process ids
    /// in range.
    pub fn from_delivery_order(
        name: impl Into<String>,
        num_processes: u32,
        events: Vec<Event>,
    ) -> Result<Trace, InvalidDeliveryOrder> {
        if !crate::linearize::is_valid_delivery_order(num_processes, &events) {
            return Err(InvalidDeliveryOrder);
        }
        Ok(Trace::from_parts(name.into(), num_processes, events))
    }

    /// Human-readable trace name (e.g. `"pvm/stencil2d-16x16"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processes `N` in the computation.
    pub fn num_processes(&self) -> u32 {
        self.num_processes
    }

    /// Total number of events across all processes.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of events in process `p`.
    pub fn process_len(&self, p: ProcessId) -> usize {
        self.delivery_pos[p.idx()].len()
    }

    /// All events in delivery order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The event at a delivery position.
    #[inline]
    pub fn at(&self, pos: usize) -> Event {
        self.events[pos]
    }

    /// Delivery position of an event.
    #[inline]
    pub fn delivery_pos(&self, id: EventId) -> usize {
        self.delivery_pos[id.process.idx()][id.index.zero_based()] as usize
    }

    /// Look up a full event by id.
    #[inline]
    pub fn event(&self, id: EventId) -> Event {
        self.events[self.delivery_pos(id)]
    }

    /// The kind of an event.
    #[inline]
    pub fn kind(&self, id: EventId) -> EventKind {
        self.event(id).kind
    }

    /// Does `id` denote an event present in this trace?
    pub fn contains(&self, id: EventId) -> bool {
        id.process.idx() < self.delivery_pos.len()
            && id.index.0 >= 1
            && id.index.zero_based() < self.delivery_pos[id.process.idx()].len()
    }

    /// The immediate predecessors of an event in the happened-before order:
    /// the previous event of the same process (if any) and, for receiving
    /// events, the remote source event.
    ///
    /// Returned as a fixed pair to keep the hot path allocation-free.
    #[inline]
    pub fn immediate_predecessors(&self, id: EventId) -> [Option<EventId>; 2] {
        let prev = id.prev_in_process();
        let src = self.kind(id).receive_source();
        [prev, src]
    }

    /// Number of point-to-point messages (matched send/receive pairs).
    pub fn num_messages(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Receive { .. }))
            .count()
    }

    /// Number of synchronous communications (pairs, not halves).
    pub fn num_sync_pairs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Sync { .. }))
            .count()
            / 2
    }

    /// Number of unary (internal) events.
    pub fn num_internal(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Internal))
            .count()
    }

    /// Produce a trace identical to this one but with processes renumbered by
    /// `perm` (`new_id = perm[old_id]`). `perm` must be a permutation of
    /// `0..N`.
    ///
    /// Process numbering is semantically irrelevant to the partial order but
    /// matters a great deal to the *fixed contiguous clusters* baseline; this
    /// is used by the ablation experiments.
    pub fn relabel_processes(&self, perm: &[u32]) -> Trace {
        assert_eq!(perm.len(), self.num_processes as usize, "perm length");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(
                (p as usize) < perm.len() && !seen[p as usize],
                "perm must be a permutation"
            );
            seen[p as usize] = true;
        }
        let map = |p: ProcessId| ProcessId(perm[p.idx()]);
        let events = self
            .events
            .iter()
            .map(|e| {
                let id = EventId::new(map(e.id.process), e.id.index);
                let kind = match e.kind {
                    EventKind::Internal => EventKind::Internal,
                    EventKind::Send { to } => EventKind::Send { to: map(to) },
                    EventKind::Receive { from } => EventKind::Receive {
                        from: EventId::new(map(from.process), from.index),
                    },
                    EventKind::Sync { peer } => EventKind::Sync {
                        peer: EventId::new(map(peer.process), peer.index),
                    },
                };
                Event::new(id, kind)
            })
            .collect();
        Trace::from_parts(format!("{}+relabel", self.name), self.num_processes, events)
    }

    /// Iterate over the event ids of one process, in order.
    pub fn process_events(&self, p: ProcessId) -> impl Iterator<Item = EventId> + '_ {
        (1..=self.process_len(p) as u32).map(move |i| EventId::new(p, EventIndex(i)))
    }

    /// Iterate over all event ids, grouped by process.
    pub fn all_event_ids(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.num_processes).flat_map(move |p| self.process_events(ProcessId(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn small() -> Trace {
        // P0: send to P1, internal;  P1: receive, send to P0; P0: receive
        let mut b = TraceBuilder::new(2);
        let s = b.send(ProcessId(0), ProcessId(1)).unwrap();
        b.internal(ProcessId(0)).unwrap();
        b.receive(ProcessId(1), s).unwrap();
        let s2 = b.send(ProcessId(1), ProcessId(0)).unwrap();
        b.receive(ProcessId(0), s2).unwrap();
        b.finish("small")
    }

    #[test]
    fn counts() {
        let t = small();
        assert_eq!(t.num_processes(), 2);
        assert_eq!(t.num_events(), 5);
        assert_eq!(t.num_messages(), 2);
        assert_eq!(t.num_internal(), 1);
        assert_eq!(t.num_sync_pairs(), 0);
        assert_eq!(t.process_len(ProcessId(0)), 3);
        assert_eq!(t.process_len(ProcessId(1)), 2);
    }

    #[test]
    fn lookup_roundtrip() {
        let t = small();
        for ev in t.events() {
            assert_eq!(t.event(ev.id), *ev);
            assert_eq!(t.at(t.delivery_pos(ev.id)), *ev);
            assert!(t.contains(ev.id));
        }
        assert!(!t.contains(EventId::new(ProcessId(0), EventIndex(4))));
        assert!(!t.contains(EventId::new(ProcessId(2), EventIndex(1))));
    }

    #[test]
    fn immediate_predecessors_shape() {
        let t = small();
        let first = EventId::new(ProcessId(0), EventIndex(1));
        assert_eq!(t.immediate_predecessors(first), [None, None]);
        let recv = EventId::new(ProcessId(1), EventIndex(1));
        assert_eq!(
            t.immediate_predecessors(recv),
            [None, Some(EventId::new(ProcessId(0), EventIndex(1)))]
        );
        let last = EventId::new(ProcessId(0), EventIndex(3));
        assert_eq!(
            t.immediate_predecessors(last),
            [
                Some(EventId::new(ProcessId(0), EventIndex(2))),
                Some(EventId::new(ProcessId(1), EventIndex(2)))
            ]
        );
    }

    #[test]
    fn relabel_preserves_structure() {
        let t = small();
        let r = t.relabel_processes(&[1, 0]);
        assert_eq!(r.num_events(), t.num_events());
        assert_eq!(r.num_messages(), t.num_messages());
        assert_eq!(r.process_len(ProcessId(1)), t.process_len(ProcessId(0)));
        // The first event is now on P1 and still a send to P0.
        let ev = r.at(0);
        assert_eq!(ev.process(), ProcessId(1));
        assert_eq!(ev.kind, EventKind::Send { to: ProcessId(0) });
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn relabel_rejects_non_permutation() {
        small().relabel_processes(&[0, 0]);
    }

    #[test]
    fn from_delivery_order_validates() {
        let t = small();
        let ok = Trace::from_delivery_order("re", t.num_processes(), t.events().to_vec()).unwrap();
        assert_eq!(ok.num_events(), t.num_events());
        assert_eq!(ok.name(), "re");
        // A receive ahead of its send is rejected.
        let mut bad = t.events().to_vec();
        bad.swap(0, 2);
        assert!(matches!(
            Trace::from_delivery_order("bad", t.num_processes(), bad),
            Err(InvalidDeliveryOrder)
        ));
    }

    #[test]
    fn event_id_iteration_covers_everything() {
        let t = small();
        let ids: Vec<_> = t.all_event_ids().collect();
        assert_eq!(ids.len(), t.num_events());
        for id in ids {
            assert!(t.contains(id));
        }
    }
}
