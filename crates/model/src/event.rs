//! Strongly-typed event and process identifiers and the event representation.

use std::fmt;

/// Identifier of a sequential process (0-based).
///
/// The paper assigns identifiers `0 < p_i <= N`; we use the conventional
/// 0-based indexing internally and only shift when printing paper-style
/// output.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// The process index as a `usize`, for direct vector indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// 1-based sequence number of an event within its process.
///
/// The Fidge/Mattern self-component of an event always equals its
/// `EventIndex`, a fact several precedence algorithms in this workspace
/// exploit: the timestamp of the *earlier* event in a precedence test is never
/// needed, only its `(process, index)` pair.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventIndex(pub u32);

impl EventIndex {
    /// First event of a process.
    pub const FIRST: EventIndex = EventIndex(1);

    /// 0-based offset into the per-process event list.
    #[inline]
    pub fn zero_based(self) -> usize {
        debug_assert!(self.0 >= 1, "EventIndex is 1-based");
        (self.0 - 1) as usize
    }

    /// The index of the next event in the same process.
    #[inline]
    pub fn next(self) -> EventIndex {
        EventIndex(self.0 + 1)
    }
}

impl fmt::Debug for EventIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Globally unique event identifier: `(process, 1-based index)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    pub process: ProcessId,
    pub index: EventIndex,
}

impl EventId {
    #[inline]
    pub fn new(process: ProcessId, index: EventIndex) -> Self {
        EventId { process, index }
    }

    /// The previous event in the same process, if any.
    #[inline]
    pub fn prev_in_process(self) -> Option<EventId> {
        if self.index.0 > 1 {
            Some(EventId::new(self.process, EventIndex(self.index.0 - 1)))
        } else {
            None
        }
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", self.process, self.index)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.process, self.index.0)
    }
}

/// The kind of an event, mirroring §2.1 of the paper (send, receive, unary)
/// plus the synchronous events discussed in §3.1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A unary (internal) event with no partner.
    Internal,
    /// A send event; `to` is the destination process. The matching receive is
    /// recorded on the receive side.
    Send { to: ProcessId },
    /// A receive event; `from` identifies the matching send event.
    Receive { from: EventId },
    /// One half of a synchronous communication; `peer` identifies the other
    /// half. Each half acts as both a transmit and a receive (§3.1), so a
    /// synchronous communication counts as **two** communication occurrences
    /// when clusters are compared.
    Sync { peer: EventId },
}

impl EventKind {
    /// Does this event receive information from another process?
    ///
    /// True for `Receive` and `Sync` events: these are the only events that
    /// can be *cluster receives* in the cluster-timestamp algorithm.
    #[inline]
    pub fn is_receiving(self) -> bool {
        matches!(self, EventKind::Receive { .. } | EventKind::Sync { .. })
    }

    /// The remote event this event receives from, if any (the matching send
    /// for a receive; the peer half for a synchronous event).
    #[inline]
    pub fn receive_source(self) -> Option<EventId> {
        match self {
            EventKind::Receive { from } => Some(from),
            EventKind::Sync { peer } => Some(peer),
            _ => None,
        }
    }
}

/// A single event of the computation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    pub id: EventId,
    pub kind: EventKind,
}

impl Event {
    #[inline]
    pub fn new(id: EventId, kind: EventKind) -> Self {
        Event { id, kind }
    }

    #[inline]
    pub fn process(&self) -> ProcessId {
        self.id.process
    }

    #[inline]
    pub fn index(&self) -> EventIndex {
        self.id.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_index_is_one_based() {
        assert_eq!(EventIndex::FIRST.zero_based(), 0);
        assert_eq!(EventIndex(5).zero_based(), 4);
        assert_eq!(EventIndex(5).next(), EventIndex(6));
    }

    #[test]
    fn prev_in_process_stops_at_first() {
        let first = EventId::new(ProcessId(3), EventIndex::FIRST);
        assert_eq!(first.prev_in_process(), None);
        let third = EventId::new(ProcessId(3), EventIndex(3));
        assert_eq!(
            third.prev_in_process(),
            Some(EventId::new(ProcessId(3), EventIndex(2)))
        );
    }

    #[test]
    fn receive_source_identifies_partners() {
        let s = EventId::new(ProcessId(0), EventIndex(1));
        assert_eq!(EventKind::Internal.receive_source(), None);
        assert_eq!(EventKind::Send { to: ProcessId(1) }.receive_source(), None);
        assert_eq!(EventKind::Receive { from: s }.receive_source(), Some(s));
        assert_eq!(EventKind::Sync { peer: s }.receive_source(), Some(s));
    }

    #[test]
    fn receiving_classification() {
        let s = EventId::new(ProcessId(0), EventIndex(1));
        assert!(!EventKind::Internal.is_receiving());
        assert!(!EventKind::Send { to: ProcessId(1) }.is_receiving());
        assert!(EventKind::Receive { from: s }.is_receiving());
        assert!(EventKind::Sync { peer: s }.is_receiving());
    }

    #[test]
    fn display_forms() {
        let e = EventId::new(ProcessId(2), EventIndex(7));
        assert_eq!(format!("{e}"), "P2#7");
        assert_eq!(format!("{e:?}"), "P2#7");
    }
}
