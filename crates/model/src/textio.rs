//! A compact, line-oriented text serialization for traces.
//!
//! The format mirrors what a monitoring entity's wire protocol carries per
//! event (§1 of the paper: process identifier, event number and type, plus
//! partner-event identification):
//!
//! ```text
//! trace <name>
//! procs <N>
//! i <p>              # internal event on process p
//! s <p> <q>          # send on p addressed to q
//! r <p> <sp> <si>    # receive on p of the send (sp, si)
//! y <p> <q>          # synchronous pair between p and q (two events)
//! ```
//!
//! Lines are in delivery order. Blank lines and `#` comments are ignored —
//! except on the `trace` header line, where everything after the first
//! space is the name, verbatim (names may contain `#` and internal spaces;
//! they may not contain newlines). This format is the workspace's only
//! serialization: every trace round-trips through it losslessly (name,
//! process count, and the full event sequence in delivery order), which the
//! `serialization_roundtrip` integration tests pin across the entire
//! workload suite.

use crate::builder::{TraceBuilder, TraceError};
use crate::event::{EventId, EventIndex, EventKind, ProcessId};
use crate::trace::Trace;
use std::fmt::Write as _;

/// Errors from [`parse_trace`].
#[derive(Debug)]
pub enum ParseError {
    /// Line did not match the grammar.
    Syntax { line: usize, text: String },
    /// Header (`trace`, `procs`) missing or out of order.
    Header(String),
    /// The described computation is invalid.
    Invalid { line: usize, source: TraceError },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax { line, text } => write!(f, "line {line}: bad syntax: {text:?}"),
            ParseError::Header(m) => write!(f, "bad header: {m}"),
            ParseError::Invalid { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a trace to the text format.
///
/// The name is written verbatim; it must not contain newlines (the only
/// shape the line-oriented format cannot carry).
pub fn write_trace(trace: &Trace) -> String {
    debug_assert!(
        !trace.name().contains(['\n', '\r']),
        "trace names may not contain newlines"
    );
    let mut out = String::new();
    let _ = writeln!(out, "trace {}", trace.name());
    let _ = writeln!(out, "procs {}", trace.num_processes());
    let mut skip_next_sync = std::collections::HashSet::new();
    for ev in trace.events() {
        match ev.kind {
            EventKind::Internal => {
                let _ = writeln!(out, "i {}", ev.process().0);
            }
            EventKind::Send { to } => {
                let _ = writeln!(out, "s {} {}", ev.process().0, to.0);
            }
            EventKind::Receive { from } => {
                let _ = writeln!(
                    out,
                    "r {} {} {}",
                    ev.process().0,
                    from.process.0,
                    from.index.0
                );
            }
            EventKind::Sync { peer } => {
                // Emit one `y` line per pair, at the first half.
                if skip_next_sync.remove(&ev.id) {
                    continue;
                }
                skip_next_sync.insert(peer);
                let _ = writeln!(out, "y {} {}", ev.process().0, peer.process.0);
            }
        }
    }
    out
}

/// Parse the text format back into a validated [`Trace`].
pub fn parse_trace(input: &str) -> Result<Trace, ParseError> {
    let mut name: Option<String> = None;
    let mut builder: Option<TraceBuilder> = None;
    for (lineno, raw) in input.lines().enumerate() {
        // The header line carries the name verbatim (it may contain '#' and
        // spaces), so it is matched before comment stripping.
        let raw_line = raw.strip_suffix('\r').unwrap_or(raw);
        let header = raw_line.trim_start();
        if let Some(rest) = header.strip_prefix("trace ") {
            name = Some(rest.to_string());
            continue;
        }
        if header == "trace" {
            name = Some(String::new());
            continue;
        }
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let op = parts.next().unwrap();
        let syntax = || ParseError::Syntax {
            line: lineno + 1,
            text: raw.to_string(),
        };
        let num = |parts: &mut std::str::SplitWhitespace| -> Result<u32, ParseError> {
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(syntax)
        };
        match op {
            "procs" => {
                let n = num(&mut parts)?;
                builder = Some(TraceBuilder::new(n));
            }
            _ => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| ParseError::Header("procs line must precede events".into()))?;
                let invalid = |line: usize| move |source| ParseError::Invalid { line, source };
                match op {
                    "i" => {
                        let p = num(&mut parts)?;
                        b.internal(ProcessId(p)).map_err(invalid(lineno + 1))?;
                    }
                    "s" => {
                        let p = num(&mut parts)?;
                        let q = num(&mut parts)?;
                        b.send(ProcessId(p), ProcessId(q))
                            .map_err(invalid(lineno + 1))?;
                    }
                    "r" => {
                        let p = num(&mut parts)?;
                        let sp = num(&mut parts)?;
                        let si = num(&mut parts)?;
                        b.receive_id(ProcessId(p), EventId::new(ProcessId(sp), EventIndex(si)))
                            .map_err(invalid(lineno + 1))?;
                    }
                    "y" => {
                        let p = num(&mut parts)?;
                        let q = num(&mut parts)?;
                        b.sync(ProcessId(p), ProcessId(q))
                            .map_err(invalid(lineno + 1))?;
                    }
                    _ => return Err(syntax()),
                }
            }
        }
    }
    let b = builder.ok_or_else(|| ParseError::Header("missing procs line".into()))?;
    Ok(b.finish(name.unwrap_or_else(|| "unnamed".into())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::event::ProcessId;

    fn roundtrip(t: &Trace) -> Trace {
        parse_trace(&write_trace(t)).expect("roundtrip parse")
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let mut b = TraceBuilder::new(3);
        let s = b.send(ProcessId(0), ProcessId(1)).unwrap();
        b.internal(ProcessId(2)).unwrap();
        b.receive(ProcessId(1), s).unwrap();
        b.sync(ProcessId(1), ProcessId(2)).unwrap();
        let s2 = b.send(ProcessId(2), ProcessId(0)).unwrap();
        b.receive(ProcessId(0), s2).unwrap();
        let t = b.finish_complete("round trip").unwrap();
        let t2 = roundtrip(&t);
        assert_eq!(t2.name(), "round trip");
        assert_eq!(t2.num_processes(), 3);
        assert_eq!(t2.events(), t.events());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "trace x\nprocs 2\n\n# comment\ni 0   # trailing\ns 0 1\nr 1 0 2\n";
        let t = parse_trace(src).unwrap();
        assert_eq!(t.num_events(), 3);
        assert_eq!(t.num_messages(), 1);
    }

    #[test]
    fn bad_syntax_reports_line() {
        let err = parse_trace("trace x\nprocs 2\nz 0\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 3, .. }));
        let err = parse_trace("trace x\nprocs 2\ni notanumber\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { .. }));
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(parse_trace("i 0\n"), Err(ParseError::Header(_))));
        assert!(matches!(parse_trace(""), Err(ParseError::Header(_))));
    }

    #[test]
    fn names_round_trip_verbatim() {
        // Full round-trip coverage for the header: names may contain '#'
        // (no comment stripping on the trace line), repeated internal
        // spaces, and may be empty.
        for name in ["plain", "has # hash", "a  b   c", "", "trace trace", "#"] {
            let mut b = TraceBuilder::new(2);
            b.internal(ProcessId(0)).unwrap();
            let t = b.finish(name);
            let back = roundtrip(&t);
            assert_eq!(back.name(), name, "name {name:?} did not round-trip");
            assert_eq!(back.events(), t.events());
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = TraceBuilder::new(4).finish("empty");
        let back = roundtrip(&t);
        assert_eq!(back.num_processes(), 4);
        assert_eq!(back.num_events(), 0);
        assert_eq!(back.name(), "empty");
    }

    #[test]
    fn invalid_computation_rejected() {
        // receive of a send that never happened
        let err = parse_trace("trace x\nprocs 2\nr 1 0 1\n").unwrap_err();
        assert!(matches!(err, ParseError::Invalid { line: 3, .. }));
    }
}
