//! Ground-truth precedence: bitset transitive closure and on-demand BFS.
//!
//! Every timestamp scheme in this workspace is property-tested against
//! [`Oracle`], which computes the full happened-before relation by transitive
//! closure over per-event bitsets. The oracle is O(E²/64) space and
//! O(E·edges/64) time — fine for test-sized traces (a 2 000-event trace costs
//! half a megabyte); for spot checks on large traces use [`reaches_bfs`].
//!
//! ## Synchronous halves
//!
//! The two halves of a synchronous pair are *causally identified* (see the
//! crate docs): they share a **node** in the closure, and `happened_before`
//! reports `true` between the two halves in both directions, matching the
//! Fidge/Mattern treatment where both halves carry identical vectors.

use crate::event::{EventId, EventKind};
use crate::trace::Trace;

/// A dense bit matrix: `rows` rows of `cols` bits.
#[derive(Clone, Debug)]
pub struct BitMatrix {
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// All-zero matrix.
    pub fn new(rows: usize, cols: usize) -> BitMatrix {
        let words_per_row = cols.div_ceil(64);
        BitMatrix {
            words_per_row,
            bits: vec![0u64; rows * words_per_row],
        }
    }

    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        self.bits[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        (self.bits[row * self.words_per_row + col / 64] >> (col % 64)) & 1 == 1
    }

    /// `row(dst) |= row(src)` — the closure step.
    pub fn or_row(&mut self, dst: usize, src: usize) {
        if dst == src {
            return;
        }
        let w = self.words_per_row;
        let (d, s) = (dst * w, src * w);
        // Split borrows: the two row ranges never overlap because dst != src.
        if d < s {
            let (a, b) = self.bits.split_at_mut(s);
            let dst_row = &mut a[d..d + w];
            let src_row = &b[..w];
            for (x, y) in dst_row.iter_mut().zip(src_row) {
                *x |= *y;
            }
        } else {
            let (a, b) = self.bits.split_at_mut(d);
            let src_row = &a[s..s + w];
            let dst_row = &mut b[..w];
            for (x, y) in dst_row.iter_mut().zip(src_row) {
                *x |= *y;
            }
        }
    }

    /// Number of set bits in a row.
    pub fn count_row(&self, row: usize) -> usize {
        let w = self.words_per_row;
        self.bits[row * w..(row + 1) * w]
            .iter()
            .map(|x| x.count_ones() as usize)
            .sum()
    }
}

/// Maps events to closure *nodes*: every event its own node, except that the
/// two halves of a synchronous pair share one.
#[derive(Clone, Debug)]
pub struct NodeMap {
    /// node id for each delivery position.
    node_of_pos: Vec<u32>,
    /// immediate predecessor nodes of each node (deduplicated).
    preds: Vec<Vec<u32>>,
}

impl NodeMap {
    /// Build the node map for a trace.
    pub fn build(trace: &Trace) -> NodeMap {
        let n_events = trace.num_events();
        let mut node_of_pos = vec![u32::MAX; n_events];
        let mut preds: Vec<Vec<u32>> = Vec::with_capacity(n_events);
        for (pos, ev) in trace.events().iter().enumerate() {
            // Sync second half: reuse the node created for the first half.
            if let EventKind::Sync { peer } = ev.kind {
                let peer_pos = trace.delivery_pos(peer);
                if peer_pos < pos {
                    let node = node_of_pos[peer_pos];
                    node_of_pos[pos] = node;
                    if let Some(prev) = ev.id.prev_in_process() {
                        let p = node_of_pos[trace.delivery_pos(prev)];
                        if !preds[node as usize].contains(&p) {
                            preds[node as usize].push(p);
                        }
                    }
                    continue;
                }
            }
            let node = preds.len() as u32;
            node_of_pos[pos] = node;
            let mut pv = Vec::new();
            if let Some(prev) = ev.id.prev_in_process() {
                pv.push(node_of_pos[trace.delivery_pos(prev)]);
            }
            if let EventKind::Receive { from } = ev.kind {
                let p = node_of_pos[trace.delivery_pos(from)];
                if !pv.contains(&p) {
                    pv.push(p);
                }
            }
            preds.push(pv);
        }
        NodeMap { node_of_pos, preds }
    }

    /// Number of nodes (events, with sync pairs merged).
    pub fn num_nodes(&self) -> usize {
        self.preds.len()
    }

    /// The node of an event, by delivery position.
    #[inline]
    pub fn node_at(&self, pos: usize) -> u32 {
        self.node_of_pos[pos]
    }

    /// The node of an event.
    #[inline]
    pub fn node(&self, trace: &Trace, id: EventId) -> u32 {
        self.node_of_pos[trace.delivery_pos(id)]
    }

    /// Immediate predecessor nodes of `node`.
    pub fn preds(&self, node: u32) -> &[u32] {
        &self.preds[node as usize]
    }
}

/// Ground-truth happened-before via full transitive closure.
pub struct Oracle {
    nodes: NodeMap,
    /// `closure.get(n, m)` ⇔ node `m` happened before node `n`.
    closure: BitMatrix,
}

impl Oracle {
    /// Compute the closure for a trace.
    pub fn compute(trace: &Trace) -> Oracle {
        let nodes = NodeMap::build(trace);
        let n = nodes.num_nodes();
        let mut closure = BitMatrix::new(n, n);
        // Nodes are numbered in (a) delivery order of their first half, and a
        // node's predecessors always have smaller ids, so one forward pass
        // completes the closure... with one exception: a sync node's
        // second-half in-process predecessor is attached *after* the node was
        // created, but still refers to an earlier position, hence a smaller
        // node id. So ascending order is a valid topological order.
        for node in 0..n as u32 {
            for i in 0..nodes.preds(node).len() {
                let p = nodes.preds(node)[i];
                debug_assert!(p < node);
                closure.or_row(node as usize, p as usize);
                closure.set(node as usize, p as usize);
            }
        }
        Oracle { nodes, closure }
    }

    /// Lamport's happened-before, with sync halves mutually ordered.
    pub fn happened_before(&self, trace: &Trace, e: EventId, f: EventId) -> bool {
        if e == f {
            return false;
        }
        let ne = self.nodes.node(trace, e);
        let nf = self.nodes.node(trace, f);
        if ne == nf {
            return true; // sync partners
        }
        self.closure.get(nf as usize, ne as usize)
    }

    /// Are `e` and `f` concurrent (distinct and unordered)?
    pub fn concurrent(&self, trace: &Trace, e: EventId, f: EventId) -> bool {
        e != f && !self.happened_before(trace, e, f) && !self.happened_before(trace, f, e)
    }

    /// Number of nodes strictly in the causal past of `e`.
    pub fn past_size(&self, trace: &Trace, e: EventId) -> usize {
        let n = self.nodes.node(trace, e);
        self.closure.count_row(n as usize)
    }

    /// The node map used by this oracle.
    pub fn nodes(&self) -> &NodeMap {
        &self.nodes
    }
}

/// On-demand reachability by backward BFS from `f`; equivalent to
/// [`Oracle::happened_before`] but O(past of `f`) per query and no quadratic
/// precomputation. Used to validate timestamps on traces too large for the
/// full closure.
pub fn reaches_bfs(trace: &Trace, nodes: &NodeMap, e: EventId, f: EventId) -> bool {
    if e == f {
        return false;
    }
    let target = nodes.node(trace, e);
    let start = nodes.node(trace, f);
    if target == start {
        return true;
    }
    let mut seen = vec![false; nodes.num_nodes()];
    let mut stack = vec![start];
    seen[start as usize] = true;
    while let Some(n) = stack.pop() {
        for &p in nodes.preds(n) {
            if p == target {
                return true;
            }
            if !seen[p as usize] {
                seen[p as usize] = true;
                // Predecessor ids are always smaller, so anything below
                // `target` can never lead back to it.
                if p > target {
                    stack.push(p);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::event::{EventIndex, ProcessId};

    fn id(p: u32, i: u32) -> EventId {
        EventId::new(ProcessId(p), EventIndex(i))
    }

    /// The Figure 2 computation from the paper.
    ///
    /// P1: A(send→P2) B C(recv E)     — paper ids (1,0,0),(2,0,0),(3,2,0)
    /// P2: D(recv A) E(send→P1) F(recv I)
    /// P3: G H I(send→P2)
    ///
    /// (Mapped to 0-based processes 0,1,2.)
    fn figure2() -> Trace {
        let mut b = TraceBuilder::new(3);
        let a = b.send(ProcessId(0), ProcessId(1)).unwrap(); // A
        b.internal(ProcessId(0)).unwrap(); // B
        b.receive(ProcessId(1), a).unwrap(); // D
        let e = b.send(ProcessId(1), ProcessId(0)).unwrap(); // E
        b.receive(ProcessId(0), e).unwrap(); // C
        b.internal(ProcessId(2)).unwrap(); // G
        b.internal(ProcessId(2)).unwrap(); // H
        let i = b.send(ProcessId(2), ProcessId(1)).unwrap(); // I
        b.receive(ProcessId(1), i).unwrap(); // F
        b.finish_complete("figure2").unwrap()
    }

    #[test]
    fn figure2_precedence() {
        let t = figure2();
        let o = Oracle::compute(&t);
        let (a, b, c) = (id(0, 1), id(0, 2), id(0, 3));
        let (d, e, f) = (id(1, 1), id(1, 2), id(1, 3));
        let (g, _h, i) = (id(2, 1), id(2, 2), id(2, 3));
        assert!(o.happened_before(&t, a, b));
        assert!(o.happened_before(&t, a, d));
        assert!(o.happened_before(&t, a, c)); // via D, E
        assert!(o.happened_before(&t, d, c));
        assert!(o.happened_before(&t, e, c));
        assert!(o.happened_before(&t, g, f));
        assert!(o.happened_before(&t, i, f));
        assert!(o.happened_before(&t, b, c)); // B before C in-process
        assert!(!o.happened_before(&t, c, a));
        assert!(o.concurrent(&t, b, d));
        assert!(o.concurrent(&t, g, a));
        assert!(o.concurrent(&t, c, f));
        assert!(!o.happened_before(&t, a, a));
    }

    #[test]
    fn sync_halves_are_mutually_ordered_and_share_past() {
        let mut b = TraceBuilder::new(3);
        let s = b.send(ProcessId(0), ProcessId(1)).unwrap();
        b.receive(ProcessId(1), s).unwrap();
        let (x, y) = b.sync(ProcessId(1), ProcessId(2)).unwrap();
        b.internal(ProcessId(2)).unwrap();
        let t = b.finish_complete("sync").unwrap();
        let o = Oracle::compute(&t);
        assert!(o.happened_before(&t, x, y));
        assert!(o.happened_before(&t, y, x));
        // P2's event after the sync sees P0's send through the sync.
        assert!(o.happened_before(&t, id(0, 1), id(2, 2)));
        // And the sync half on P1 sees nothing from P2's future.
        assert!(!o.happened_before(&t, id(2, 2), x));
    }

    #[test]
    fn bfs_agrees_with_closure() {
        let t = figure2();
        let o = Oracle::compute(&t);
        let nm = NodeMap::build(&t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(
                    o.happened_before(&t, e, f),
                    reaches_bfs(&t, &nm, e, f),
                    "mismatch for {e} -> {f}"
                );
            }
        }
    }

    #[test]
    fn past_size_counts_strict_past() {
        let t = figure2();
        let o = Oracle::compute(&t);
        assert_eq!(o.past_size(&t, id(0, 1)), 0); // A
        assert_eq!(o.past_size(&t, id(1, 1)), 1); // D sees A
        assert_eq!(o.past_size(&t, id(0, 3)), 4); // C sees A,B,D,E
    }

    #[test]
    fn bitmatrix_or_row_both_directions() {
        let mut m = BitMatrix::new(3, 130);
        m.set(0, 0);
        m.set(0, 129);
        m.or_row(2, 0);
        assert!(m.get(2, 0) && m.get(2, 129));
        m.set(2, 64);
        m.or_row(1, 2);
        assert!(m.get(1, 0) && m.get(1, 64) && m.get(1, 129));
        assert_eq!(m.count_row(1), 3);
        // dst < src path
        m.or_row(0, 2);
        assert!(m.get(0, 64));
    }
}
