//! Validating trace construction.

use crate::event::{Event, EventId, EventIndex, EventKind, ProcessId};
use crate::trace::Trace;
use std::fmt;

/// Errors detected while building a trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceError {
    /// A process id `>= N` was used.
    UnknownProcess(ProcessId),
    /// A receive referenced a send token that does not exist or was already
    /// consumed.
    UnmatchedReceive { claimed_send: EventId },
    /// The referenced event exists but is not a send.
    NotASend(EventId),
    /// The receive landed on a different process than the send's destination.
    WrongDestination {
        send: EventId,
        expected: ProcessId,
        got: ProcessId,
    },
    /// A process attempted to communicate with itself.
    SelfCommunication(ProcessId),
    /// An empty trace (zero processes) was requested.
    NoProcesses,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnknownProcess(p) => write!(f, "unknown process {p}"),
            TraceError::UnmatchedReceive { claimed_send } => {
                write!(
                    f,
                    "receive names send {claimed_send} which is absent or consumed"
                )
            }
            TraceError::NotASend(e) => write!(f, "event {e} is not a send"),
            TraceError::WrongDestination {
                send,
                expected,
                got,
            } => write!(
                f,
                "send {send} is addressed to {expected} but was received on {got}"
            ),
            TraceError::SelfCommunication(p) => {
                write!(f, "process {p} cannot communicate with itself")
            }
            TraceError::NoProcesses => write!(f, "a trace needs at least one process"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A token returned by [`TraceBuilder::send`], to be handed to
/// [`TraceBuilder::receive`] to match the message up.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SendToken(EventId);

impl SendToken {
    /// The send event this token denotes.
    pub fn event(self) -> EventId {
        self.0
    }
}

/// Incremental, validating builder for [`Trace`]s.
///
/// Events are appended in the order the central monitoring entity would
/// receive them (the *delivery order*). The builder enforces, at append time,
/// every invariant [`Trace`] relies on: receives follow their sends, sync
/// halves are adjacent, processes exist, and no process talks to itself.
pub struct TraceBuilder {
    num_processes: u32,
    events: Vec<Event>,
    /// Next 1-based event index for each process.
    next_index: Vec<u32>,
    /// Pending (sent but not yet received) sends: parallel vecs kept sorted by
    /// insertion; lookup is by exact `EventId`.
    pending_sends: Vec<(EventId, ProcessId)>,
}

impl TraceBuilder {
    /// Start a trace over `num_processes` processes.
    pub fn new(num_processes: u32) -> TraceBuilder {
        TraceBuilder {
            num_processes,
            events: Vec::new(),
            next_index: vec![1; num_processes as usize],
            pending_sends: Vec::new(),
        }
    }

    /// Number of processes the trace is declared over.
    pub fn num_processes(&self) -> u32 {
        self.num_processes
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events appended so far on process `p`.
    pub fn process_len(&self, p: ProcessId) -> u32 {
        self.next_index.get(p.idx()).map(|n| n - 1).unwrap_or(0)
    }

    fn check_process(&self, p: ProcessId) -> Result<(), TraceError> {
        if p.idx() < self.num_processes as usize {
            Ok(())
        } else {
            Err(TraceError::UnknownProcess(p))
        }
    }

    fn fresh_id(&mut self, p: ProcessId) -> EventId {
        let idx = self.next_index[p.idx()];
        self.next_index[p.idx()] += 1;
        EventId::new(p, EventIndex(idx))
    }

    /// Append a unary (internal) event on `p`.
    pub fn internal(&mut self, p: ProcessId) -> Result<EventId, TraceError> {
        self.check_process(p)?;
        let id = self.fresh_id(p);
        self.events.push(Event::new(id, EventKind::Internal));
        Ok(id)
    }

    /// Append a send event on `from` addressed to `to`; returns a token the
    /// matching [`receive`](Self::receive) must present.
    pub fn send(&mut self, from: ProcessId, to: ProcessId) -> Result<SendToken, TraceError> {
        self.check_process(from)?;
        self.check_process(to)?;
        if from == to {
            return Err(TraceError::SelfCommunication(from));
        }
        let id = self.fresh_id(from);
        self.events.push(Event::new(id, EventKind::Send { to }));
        self.pending_sends.push((id, to));
        Ok(SendToken(id))
    }

    /// Append the receive matching `token` on process `on`.
    pub fn receive(&mut self, on: ProcessId, token: SendToken) -> Result<EventId, TraceError> {
        self.check_process(on)?;
        let send_id = token.0;
        let slot = self
            .pending_sends
            .iter()
            .position(|(id, _)| *id == send_id)
            .ok_or(TraceError::UnmatchedReceive {
                claimed_send: send_id,
            })?;
        let (_, expected_to) = self.pending_sends[slot];
        if expected_to != on {
            return Err(TraceError::WrongDestination {
                send: send_id,
                expected: expected_to,
                got: on,
            });
        }
        self.pending_sends.swap_remove(slot);
        let id = self.fresh_id(on);
        self.events
            .push(Event::new(id, EventKind::Receive { from: send_id }));
        Ok(id)
    }

    /// Append the receive of the send event `send_id` on process `on`,
    /// identifying the send by id rather than token. Used by deserialization;
    /// subject to the same validation as [`receive`](Self::receive).
    pub fn receive_id(&mut self, on: ProcessId, send_id: EventId) -> Result<EventId, TraceError> {
        self.receive(on, SendToken(send_id))
    }

    /// Append a synchronous communication between `a` and `b`: two adjacent
    /// `Sync` halves referencing each other.
    pub fn sync(&mut self, a: ProcessId, b: ProcessId) -> Result<(EventId, EventId), TraceError> {
        self.check_process(a)?;
        self.check_process(b)?;
        if a == b {
            return Err(TraceError::SelfCommunication(a));
        }
        let ia = self.fresh_id(a);
        let ib = self.fresh_id(b);
        self.events
            .push(Event::new(ia, EventKind::Sync { peer: ib }));
        self.events
            .push(Event::new(ib, EventKind::Sync { peer: ia }));
        Ok((ia, ib))
    }

    /// Send tokens still lacking a matching receive (messages in flight).
    pub fn pending(&self) -> impl Iterator<Item = SendToken> + '_ {
        self.pending_sends.iter().map(|&(id, _)| SendToken(id))
    }

    /// Finalize into an immutable [`Trace`].
    ///
    /// In-flight messages are permitted (a send with no receive is a valid
    /// computation prefix, exactly what a live monitoring entity sees).
    pub fn finish(self, name: impl Into<String>) -> Trace {
        Trace::from_parts(name.into(), self.num_processes, self.events)
    }

    /// Finalize, but fail if any message is still in flight. Workload
    /// generators use this to assert they matched every send.
    pub fn finish_complete(self, name: impl Into<String>) -> Result<Trace, TraceError> {
        if let Some((id, _)) = self.pending_sends.first() {
            return Err(TraceError::UnmatchedReceive { claimed_send: *id });
        }
        Ok(self.finish(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_delivery_order() {
        let mut b = TraceBuilder::new(3);
        let s = b.send(ProcessId(0), ProcessId(2)).unwrap();
        b.internal(ProcessId(1)).unwrap();
        b.receive(ProcessId(2), s).unwrap();
        let (x, y) = b.sync(ProcessId(1), ProcessId(2)).unwrap();
        assert_eq!(x, EventId::new(ProcessId(1), EventIndex(2)));
        assert_eq!(y, EventId::new(ProcessId(2), EventIndex(2)));
        let t = b.finish_complete("t").unwrap();
        assert_eq!(t.num_events(), 5);
        assert_eq!(t.num_sync_pairs(), 1);
    }

    #[test]
    fn rejects_unknown_process() {
        let mut b = TraceBuilder::new(1);
        assert_eq!(
            b.internal(ProcessId(1)),
            Err(TraceError::UnknownProcess(ProcessId(1)))
        );
        assert!(matches!(
            b.send(ProcessId(0), ProcessId(7)),
            Err(TraceError::UnknownProcess(_))
        ));
    }

    #[test]
    fn rejects_self_communication() {
        let mut b = TraceBuilder::new(2);
        assert_eq!(
            b.send(ProcessId(1), ProcessId(1)),
            Err(TraceError::SelfCommunication(ProcessId(1)))
        );
        assert_eq!(
            b.sync(ProcessId(0), ProcessId(0)),
            Err(TraceError::SelfCommunication(ProcessId(0)))
        );
    }

    #[test]
    fn rejects_double_receive() {
        let mut b = TraceBuilder::new(2);
        let s = b.send(ProcessId(0), ProcessId(1)).unwrap();
        b.receive(ProcessId(1), s).unwrap();
        assert!(matches!(
            b.receive(ProcessId(1), s),
            Err(TraceError::UnmatchedReceive { .. })
        ));
    }

    #[test]
    fn rejects_wrong_destination() {
        let mut b = TraceBuilder::new(3);
        let s = b.send(ProcessId(0), ProcessId(1)).unwrap();
        assert!(matches!(
            b.receive(ProcessId(2), s),
            Err(TraceError::WrongDestination { .. })
        ));
        // The send is still pending and can be received correctly afterwards.
        b.receive(ProcessId(1), s).unwrap();
    }

    #[test]
    fn finish_complete_rejects_in_flight() {
        let mut b = TraceBuilder::new(2);
        b.send(ProcessId(0), ProcessId(1)).unwrap();
        assert!(matches!(
            b.finish_complete("t"),
            Err(TraceError::UnmatchedReceive { .. })
        ));
    }

    #[test]
    fn finish_allows_prefix_with_in_flight_messages() {
        let mut b = TraceBuilder::new(2);
        b.send(ProcessId(0), ProcessId(1)).unwrap();
        assert_eq!(b.pending().count(), 1);
        let t = b.finish("prefix");
        assert_eq!(t.num_events(), 1);
        assert_eq!(t.num_messages(), 0); // no matched pair
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceError::WrongDestination {
            send: EventId::new(ProcessId(0), EventIndex(1)),
            expected: ProcessId(1),
            got: ProcessId(2),
        };
        let msg = format!("{e}");
        assert!(msg.contains("P1") && msg.contains("P2"));
    }
}
