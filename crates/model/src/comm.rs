//! Process-level communication structure.
//!
//! The static clustering algorithm of §3.1 operates on *communication
//! occurrences* between groups of processes: a send in one group whose
//! matching receive is in the other. Synchronous communications count as
//! **two** occurrences, because merging the two groups would remove two
//! cluster-receive events rather than one.

use crate::event::{EventKind, ProcessId};
use crate::trace::Trace;

/// Symmetric matrix of communication occurrences between process pairs.
///
/// `count(p, q)` is the number of messages between `p` and `q` (in either
/// direction) plus twice the number of synchronous communications between
/// them.
#[derive(Clone, Debug)]
pub struct CommMatrix {
    n: usize,
    /// Upper-triangular storage, row-major: entry for (p, q) with p < q at
    /// `p*n - p*(p+1)/2 + (q - p - 1)`.
    counts: Vec<u64>,
}

impl CommMatrix {
    /// Count communication occurrences in a trace.
    pub fn from_trace(trace: &Trace) -> CommMatrix {
        let n = trace.num_processes() as usize;
        let mut m = CommMatrix {
            n,
            counts: vec![0; n * (n.saturating_sub(1)) / 2],
        };
        for ev in trace.events() {
            match ev.kind {
                EventKind::Receive { from } => {
                    m.add(ev.process(), from.process, 1);
                }
                // Each half contributes 1; a pair totals 2, as required.
                EventKind::Sync { peer } => {
                    m.add(ev.process(), peer.process, 1);
                }
                _ => {}
            }
        }
        m
    }

    /// An empty matrix over `n` processes.
    pub fn zero(n: usize) -> CommMatrix {
        CommMatrix {
            n,
            counts: vec![0; n * (n.saturating_sub(1)) / 2],
        }
    }

    #[inline]
    fn slot(&self, p: ProcessId, q: ProcessId) -> Option<usize> {
        let (a, b) = if p.idx() < q.idx() {
            (p.idx(), q.idx())
        } else if q.idx() < p.idx() {
            (q.idx(), p.idx())
        } else {
            return None;
        };
        Some(a * self.n - a * (a + 1) / 2 + (b - a - 1))
    }

    /// Add `k` occurrences between `p` and `q` (no-op for `p == q`).
    pub fn add(&mut self, p: ProcessId, q: ProcessId, k: u64) {
        if let Some(s) = self.slot(p, q) {
            self.counts[s] += k;
        }
    }

    /// Occurrences between `p` and `q`.
    pub fn count(&self, p: ProcessId, q: ProcessId) -> u64 {
        self.slot(p, q).map(|s| self.counts[s]).unwrap_or(0)
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Total occurrences over all pairs.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Communication occurrences between two disjoint groups of processes.
    pub fn between_groups(&self, a: &[ProcessId], b: &[ProcessId]) -> u64 {
        let mut sum = 0;
        for &p in a {
            for &q in b {
                sum += self.count(p, q);
            }
        }
        sum
    }
}

/// The process communication graph: vertices are processes, an edge joins two
/// processes that communicate at least once. Used for locality statistics and
/// for the Garg/Skawratananond vertex-cover size bound (§2.4).
#[derive(Clone, Debug)]
pub struct CommGraph {
    n: usize,
    adj: Vec<Vec<u32>>,
}

impl CommGraph {
    /// Build from a communication matrix.
    pub fn from_matrix(m: &CommMatrix) -> CommGraph {
        let n = m.num_processes();
        let mut adj = vec![Vec::new(); n];
        for p in 0..n {
            for q in (p + 1)..n {
                if m.count(ProcessId(p as u32), ProcessId(q as u32)) > 0 {
                    adj[p].push(q as u32);
                    adj[q].push(p as u32);
                }
            }
        }
        CommGraph { n, adj }
    }

    /// Build directly from a trace.
    pub fn from_trace(trace: &Trace) -> CommGraph {
        CommGraph::from_matrix(&CommMatrix::from_trace(trace))
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Neighbours of `p`.
    pub fn neighbours(&self, p: ProcessId) -> &[u32] {
        &self.adj[p.idx()]
    }

    /// Degree of `p`.
    pub fn degree(&self, p: ProcessId) -> usize {
        self.adj[p.idx()].len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Greedy maximal-matching 2-approximation of a minimum vertex cover.
    ///
    /// Garg & Skawratananond's synchronous timestamps have size equal to a
    /// vertex cover of this graph; the 2-approximation gives a realizable
    /// upper bound on their timestamp size.
    pub fn vertex_cover_2approx(&self) -> Vec<ProcessId> {
        let mut covered = vec![false; self.n];
        let mut cover = Vec::new();
        for p in 0..self.n {
            if covered[p] {
                continue;
            }
            for &q in &self.adj[p] {
                if !covered[q as usize] {
                    covered[p] = true;
                    covered[q as usize] = true;
                    cover.push(ProcessId(p as u32));
                    cover.push(ProcessId(q));
                    break;
                }
            }
        }
        cover
    }

    /// Fraction of each process's communication that goes to its `k` most
    /// frequent partners, averaged over processes — a locality score in
    /// `[0, 1]`. High values mean "most communication of most processes is
    /// with a small number of other processes" (§2.3).
    pub fn locality_score(m: &CommMatrix, k: usize) -> f64 {
        let n = m.num_processes();
        let mut total_score = 0.0;
        let mut active = 0usize;
        for p in 0..n {
            let mut row: Vec<u64> = (0..n)
                .filter(|&q| q != p)
                .map(|q| m.count(ProcessId(p as u32), ProcessId(q as u32)))
                .collect();
            let sum: u64 = row.iter().sum();
            if sum == 0 {
                continue;
            }
            row.sort_unstable_by(|a, b| b.cmp(a));
            let top: u64 = row.iter().take(k).sum();
            total_score += top as f64 / sum as f64;
            active += 1;
        }
        if active == 0 {
            1.0
        } else {
            total_score / active as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn trace_with_sync() -> Trace {
        let mut b = TraceBuilder::new(4);
        let s = b.send(p(0), p(1)).unwrap();
        b.receive(p(1), s).unwrap();
        let s = b.send(p(1), p(0)).unwrap();
        b.receive(p(0), s).unwrap();
        b.sync(p(2), p(3)).unwrap();
        let s = b.send(p(0), p(2)).unwrap();
        b.receive(p(2), s).unwrap();
        b.finish_complete("t").unwrap()
    }

    #[test]
    fn matrix_counts_messages_and_syncs() {
        let t = trace_with_sync();
        let m = CommMatrix::from_trace(&t);
        assert_eq!(m.count(p(0), p(1)), 2); // two messages, one each way
        assert_eq!(m.count(p(1), p(0)), 2); // symmetric
        assert_eq!(m.count(p(2), p(3)), 2); // one sync counts twice
        assert_eq!(m.count(p(0), p(2)), 1);
        assert_eq!(m.count(p(1), p(3)), 0);
        assert_eq!(m.count(p(0), p(0)), 0);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn group_counts() {
        let t = trace_with_sync();
        let m = CommMatrix::from_trace(&t);
        assert_eq!(m.between_groups(&[p(0), p(1)], &[p(2), p(3)]), 1);
        assert_eq!(m.between_groups(&[p(0)], &[p(1), p(2)]), 3);
    }

    #[test]
    fn graph_structure() {
        let t = trace_with_sync();
        let g = CommGraph::from_trace(&t);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(p(0)), 2);
        assert_eq!(g.degree(p(3)), 1);
        assert!(g.neighbours(p(2)).contains(&3));
    }

    #[test]
    fn vertex_cover_covers_all_edges() {
        let t = trace_with_sync();
        let g = CommGraph::from_trace(&t);
        let cover = g.vertex_cover_2approx();
        let in_cover = |q: ProcessId| cover.contains(&q);
        for a in 0..4u32 {
            for &bq in g.neighbours(p(a)) {
                assert!(in_cover(p(a)) || in_cover(p(bq)));
            }
        }
    }

    #[test]
    fn locality_score_bounds() {
        let t = trace_with_sync();
        let m = CommMatrix::from_trace(&t);
        let s1 = CommGraph::locality_score(&m, 1);
        let s_all = CommGraph::locality_score(&m, 4);
        assert!((0.0..=1.0).contains(&s1));
        assert!((s_all - 1.0).abs() < 1e-12);
        assert!(s1 <= s_all + 1e-12);
    }
}
