//! Descriptive statistics for traces.

use crate::comm::{CommGraph, CommMatrix};
use crate::event::ProcessId;
use crate::trace::Trace;
use std::fmt;

/// Summary statistics of a trace, for reports and workload sanity checks.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    pub name: String,
    pub num_processes: u32,
    pub num_events: usize,
    pub num_messages: usize,
    pub num_sync_pairs: usize,
    pub num_internal: usize,
    /// Mean events per process.
    pub mean_events_per_process: f64,
    /// Largest per-process event count.
    pub max_events_per_process: usize,
    /// Edges in the process communication graph.
    pub comm_edges: usize,
    /// Mean communication-partner count per process.
    pub mean_degree: f64,
    /// Fraction of communication going to each process's top-3 partners
    /// (see [`CommGraph::locality_score`]).
    pub locality_top3: f64,
}

impl TraceStats {
    /// Compute all statistics for a trace.
    pub fn compute(trace: &Trace) -> TraceStats {
        let n = trace.num_processes();
        let matrix = CommMatrix::from_trace(trace);
        let graph = CommGraph::from_matrix(&matrix);
        let per_proc: Vec<usize> = (0..n).map(|p| trace.process_len(ProcessId(p))).collect();
        let degrees: usize = (0..n).map(|p| graph.degree(ProcessId(p))).sum();
        TraceStats {
            name: trace.name().to_string(),
            num_processes: n,
            num_events: trace.num_events(),
            num_messages: trace.num_messages(),
            num_sync_pairs: trace.num_sync_pairs(),
            num_internal: trace.num_internal(),
            mean_events_per_process: trace.num_events() as f64 / n.max(1) as f64,
            max_events_per_process: per_proc.iter().copied().max().unwrap_or(0),
            comm_edges: graph.num_edges(),
            mean_degree: degrees as f64 / n.max(1) as f64,
            locality_top3: CommGraph::locality_score(&matrix, 3),
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: N={} events={} msgs={} syncs={} internal={} deg={:.1} top3-locality={:.2}",
            self.name,
            self.num_processes,
            self.num_events,
            self.num_messages,
            self.num_sync_pairs,
            self.num_internal,
            self.mean_degree,
            self.locality_top3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    #[test]
    fn stats_of_simple_trace() {
        let mut b = TraceBuilder::new(3);
        let s = b.send(ProcessId(0), ProcessId(1)).unwrap();
        b.receive(ProcessId(1), s).unwrap();
        b.internal(ProcessId(2)).unwrap();
        b.sync(ProcessId(1), ProcessId(2)).unwrap();
        let t = b.finish_complete("s").unwrap();
        let st = TraceStats::compute(&t);
        assert_eq!(st.num_processes, 3);
        assert_eq!(st.num_events, 5);
        assert_eq!(st.num_messages, 1);
        assert_eq!(st.num_sync_pairs, 1);
        assert_eq!(st.num_internal, 1);
        assert_eq!(st.comm_edges, 2);
        assert_eq!(st.max_events_per_process, 2);
        assert!((st.mean_events_per_process - 5.0 / 3.0).abs() < 1e-12);
        let shown = format!("{st}");
        assert!(shown.contains("N=3") && shown.contains("msgs=1"));
    }
}
