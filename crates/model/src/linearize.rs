//! Alternative delivery orders.
//!
//! A central monitoring entity may receive the same computation's events in
//! many different valid orders. [`relinearize`] produces such an order (any
//! linear extension of the happened-before relation that keeps sync halves
//! adjacent), and [`is_valid_delivery_order`] checks the invariants. The
//! timestamp engines must produce the *same stamps per event* under every
//! valid order — a strong invariance property the integration tests exploit.

use crate::event::{Event, EventId, EventKind, ProcessId};
use crate::trace::Trace;

/// Is this event sequence a valid delivery order (per-process order, sends
/// before receives, sync halves adjacent)?
pub fn is_valid_delivery_order(num_processes: u32, events: &[Event]) -> bool {
    let mut seen: Vec<u32> = vec![0; num_processes as usize];
    let mut delivered = std::collections::HashSet::new();
    let mut pending_sync: Option<EventId> = None;
    for ev in events {
        if ev.process().idx() >= seen.len() {
            return false;
        }
        if let Some(expected) = pending_sync.take() {
            if ev.id != expected {
                return false; // sync halves must be adjacent
            }
        } else if let EventKind::Sync { peer } = ev.kind {
            if !delivered.contains(&peer) {
                pending_sync = Some(peer);
            }
        }
        if ev.index().0 != seen[ev.process().idx()] + 1 {
            return false;
        }
        if let EventKind::Receive { from } = ev.kind {
            if !delivered.contains(&from) {
                return false;
            }
        }
        seen[ev.process().idx()] += 1;
        delivered.insert(ev.id);
    }
    pending_sync.is_none()
}

/// Produce a different valid delivery order of the same computation, chosen
/// by a deterministic pseudo-random tie-break from `seed`.
///
/// The schedule repeatedly picks one of the currently *enabled* events (next
/// in its process, with its send already delivered); picking the first half
/// of a sync pair requires the peer to be enabled too, and delivers both
/// halves back to back.
pub fn relinearize(trace: &Trace, seed: u64) -> Trace {
    let n = trace.num_processes();
    let mut next: Vec<u32> = vec![1; n as usize];
    let mut delivered = std::collections::HashSet::new();
    let mut out: Vec<Event> = Vec::with_capacity(trace.num_events());
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut rng = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.max(1);
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };

    let enabled =
        |next: &[u32], delivered: &std::collections::HashSet<EventId>, p: u32| -> Option<Event> {
            let idx = next[p as usize];
            if idx as usize > trace.process_len(ProcessId(p)) {
                return None;
            }
            let id = EventId::new(ProcessId(p), crate::event::EventIndex(idx));
            let ev = trace.event(id);
            match ev.kind {
                EventKind::Receive { from } if !delivered.contains(&from) => None,
                EventKind::Sync { peer } => {
                    // Both halves must be next-in-line simultaneously.
                    if delivered.contains(&peer) || next[peer.process.idx()] == peer.index.0 {
                        Some(ev)
                    } else {
                        None
                    }
                }
                _ => Some(ev),
            }
        };

    while out.len() < trace.num_events() {
        let candidates: Vec<Event> = (0..n)
            .filter_map(|p| enabled(&next, &delivered, p))
            .collect();
        assert!(
            !candidates.is_empty(),
            "valid traces always have an enabled event"
        );
        let pick = candidates[(rng() as usize) % candidates.len()];
        // Deliver the pick (and its sync peer immediately after, if pending).
        out.push(pick);
        delivered.insert(pick.id);
        next[pick.process().idx()] += 1;
        if let EventKind::Sync { peer } = pick.kind {
            if !delivered.contains(&peer) {
                let peer_ev = trace.event(peer);
                out.push(peer_ev);
                delivered.insert(peer);
                next[peer.process.idx()] += 1;
            }
        }
    }
    debug_assert!(is_valid_delivery_order(n, &out));
    Trace::from_parts(format!("{}+relin", trace.name()), n, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::oracle::Oracle;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(3);
        let s = b.send(p(0), p(1)).unwrap();
        b.internal(p(2)).unwrap();
        b.receive(p(1), s).unwrap();
        b.sync(p(1), p(2)).unwrap();
        let s2 = b.send(p(2), p(0)).unwrap();
        b.receive(p(0), s2).unwrap();
        b.internal(p(0)).unwrap();
        b.finish_complete("lin").unwrap()
    }

    #[test]
    fn original_order_is_valid() {
        let t = sample();
        assert!(is_valid_delivery_order(t.num_processes(), t.events()));
    }

    #[test]
    fn relinearized_orders_are_valid_and_complete() {
        let t = sample();
        for seed in 0..20 {
            let r = relinearize(&t, seed);
            assert!(is_valid_delivery_order(r.num_processes(), r.events()));
            assert_eq!(r.num_events(), t.num_events());
            // Same event set.
            let mut a: Vec<EventId> = t.events().iter().map(|e| e.id).collect();
            let mut b: Vec<EventId> = r.events().iter().map(|e| e.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn relinearization_changes_order_sometimes() {
        let t = sample();
        let changed = (0..20).any(|seed| relinearize(&t, seed).events() != t.events());
        assert!(
            changed,
            "20 reshuffles should produce at least one new order"
        );
    }

    #[test]
    fn happened_before_is_order_independent() {
        let t = sample();
        let o1 = Oracle::compute(&t);
        for seed in 0..5 {
            let r = relinearize(&t, seed);
            let o2 = Oracle::compute(&r);
            for e in t.all_event_ids() {
                for f in t.all_event_ids() {
                    assert_eq!(
                        o1.happened_before(&t, e, f),
                        o2.happened_before(&r, e, f),
                        "seed {seed}: {e} -> {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn validity_checker_rejects_bad_orders() {
        let t = sample();
        let mut events: Vec<Event> = t.events().to_vec();
        events.swap(0, 2); // receive before its send / out of process order
        assert!(!is_valid_delivery_order(t.num_processes(), &events));
        // Splitting a sync pair is invalid.
        let mut ev2: Vec<Event> = t.events().to_vec();
        let sync_pos = ev2
            .iter()
            .position(|e| matches!(e.kind, EventKind::Sync { .. }))
            .unwrap();
        let moved = ev2.remove(sync_pos + 1);
        ev2.push(moved);
        assert!(!is_valid_delivery_order(t.num_processes(), &ev2));
    }
}
