//! # cts-model — the parallel-computation model
//!
//! This crate implements the computation model of Section 2.1 of *Clustering
//! Strategies for Cluster Timestamps* (Ward, Huang & Taylor, ICPP 2004): a
//! parallel computation is a set of sequential **processes**, each a totally
//! ordered sequence of **events** (send, receive, unary/internal, and
//! synchronous), and the computation as a whole is the partial order generated
//! by Lamport's *happened-before* relation over all events.
//!
//! The crate provides:
//!
//! - strongly-typed identifiers ([`ProcessId`], [`EventIndex`], [`EventId`]);
//! - the [`Event`] / [`EventKind`] representation, including synchronous
//!   event pairs (each synchronous event is simultaneously a transmit and a
//!   receive — see §3.1 of the paper);
//! - a validating [`TraceBuilder`] producing immutable [`Trace`]s whose global
//!   event sequence is a *delivery order*: a linearization of the partial
//!   order suitable for online (dynamic) timestamping by a central monitoring
//!   entity;
//! - a ground-truth [`oracle::Oracle`] (bitset transitive closure) and
//!   on-demand [`oracle::reaches_bfs`] used to property-test every timestamp
//!   scheme in the workspace;
//! - the process [`comm::CommGraph`] / [`comm::CommMatrix`] (communication
//!   occurrences, with synchronous communications counted twice, §3.1);
//! - trace [`stats`], [`textio`] (a compact text serialization), and process
//!   relabeling utilities.
//!
//! ## Synchronous events
//!
//! A synchronous communication is modeled as a *pair* of events, one per
//! participating process, each referencing the other. Following POET's
//! convention the two halves are **causally identified**: each sees the
//! other's past, and precedence queries treat the two halves as mutually
//! ordered (both `a → b` and `b → a` hold). All timestamp schemes in this
//! workspace and the ground-truth oracle share that convention, so they can be
//! checked against each other exactly.

pub mod builder;
pub mod comm;
pub mod event;
pub mod linearize;
pub mod oracle;
pub mod stats;
pub mod textio;
pub mod trace;

pub use builder::{TraceBuilder, TraceError};
pub use event::{Event, EventId, EventIndex, EventKind, ProcessId};
pub use oracle::Oracle;
pub use trace::Trace;
