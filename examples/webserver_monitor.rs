//! Online monitoring of a web-server computation: events stream into the
//! monitoring entity one at a time; the dynamic cluster-timestamp engine
//! stamps them as they arrive (the deployment mode §3.2 argues dynamic
//! clustering exists for), while an event store maintains the queryable
//! partial order.
//!
//! ```text
//! cargo run --release --example webserver_monitor
//! ```

use cluster_timestamps::prelude::*;
use cts_core::cluster::ClusterEngine;
use cts_store::event_store::EventStore;
use cts_store::queries::{greatest_concurrent, ClusterBackend};
use cts_workloads::web::WebServer;

fn main() {
    let workload = WebServer {
        clients: 12,
        workers: 6,
        requests: 300,
        affinity: 0.9,
    };
    let trace = workload.generate(7);
    println!(
        "monitoring {}: {} events, {} processes",
        trace.name(),
        trace.num_events(),
        trace.num_processes()
    );

    // The monitoring entity: store + dynamic timestamp engine, fed online.
    let mut store = EventStore::new(trace.num_processes());
    let mut engine = ClusterEngine::new(
        trace.num_processes(),
        MergeOnNth::new(trace.num_processes(), 13, 5.0),
    );
    for (k, &ev) in trace.events().iter().enumerate() {
        store.insert(ev).expect("valid delivery order");
        engine.accept(ev);
        if (k + 1) % 500 == 0 {
            println!(
                "  after {:>5} events: {} clusters",
                k + 1,
                engine.final_partition_snapshot().num_clusters()
            );
        }
    }
    let cts = engine.finish();
    println!(
        "\nfinal: {} cluster receives, {} merges",
        cts.num_cluster_receives(),
        cts.num_merges()
    );
    let clusters = cts.final_partition();
    println!("clusters found (sessions gravitate to their workers):");
    for (i, c) in clusters.clusters().iter().enumerate().take(8) {
        let names: Vec<String> = c
            .iter()
            .map(|p| {
                let x = p.0;
                if x < 12 {
                    format!("client{x}")
                } else if x == 12 {
                    "acceptor".into()
                } else if x < 19 {
                    format!("worker{}", x - 13)
                } else {
                    "backend".into()
                }
            })
            .collect();
        println!("  {i}: {}", names.join(" "));
    }

    // Interactive-style queries a visualization would pose.
    let probe = trace.at(trace.num_events() / 2).id;
    let gc = greatest_concurrent(&mut ClusterBackend(&cts), &trace, probe);
    let concurrent_count = gc.iter().flatten().count();
    println!(
        "\ngreatest-concurrent of {probe}: {concurrent_count} processes have a concurrent event"
    );

    // Scrolling: fetch a window of each process's events from the B+-tree.
    let window = store.process_window(ProcessId(12), 1, 21);
    println!(
        "acceptor's first {} events: {} sends/receives",
        window.len(),
        window
            .iter()
            .filter(|r| r.event.kind.receive_source().is_some()
                || matches!(r.event.kind, EventKind::Send { .. }))
            .count()
    );

    let report = SpaceReport::measure(&cts, Encoding::paper_default(trace.num_processes(), 13));
    println!(
        "\nspace: {:.1} elements/event vs {} for Fidge/Mattern (ratio {:.3})",
        report.avg_cluster_elements,
        300.max(trace.num_processes()),
        report.ratio
    );
}
