//! Quickstart: record a small computation, timestamp it three ways, and
//! compare precedence answers and space.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cluster_timestamps::prelude::*;

fn main() {
    // --- Record the paper's Figure 2 computation -------------------------
    // P0: A(send→P1) B(send→P2) C(recv E)
    // P1: D(recv A)  E(send→P0) F(recv H)
    // P2: G(recv B)  H(send→P1) I(unary)
    let mut b = TraceBuilder::new(3);
    let a = b.send(ProcessId(0), ProcessId(1)).unwrap();
    let bb = b.send(ProcessId(0), ProcessId(2)).unwrap();
    let d = b.receive(ProcessId(1), a).unwrap();
    let e = b.send(ProcessId(1), ProcessId(0)).unwrap();
    let c = b.receive(ProcessId(0), e).unwrap();
    let g = b.receive(ProcessId(2), bb).unwrap();
    let h = b.send(ProcessId(2), ProcessId(1)).unwrap();
    let f = b.receive(ProcessId(1), h).unwrap();
    let i = b.internal(ProcessId(2)).unwrap();
    let trace = b.finish("figure2");
    println!(
        "trace: {} events over {} processes",
        trace.num_events(),
        trace.num_processes()
    );

    // --- Fidge/Mattern stamps (the baseline the paper starts from) -------
    let fm = FmStore::compute(&trace);
    println!("\nFidge/Mattern stamps:");
    for ev in trace.events() {
        println!(
            "  {:>6} {:?}",
            format!("{}", ev.id),
            fm.stamp(&trace, ev.id)
        );
    }

    // --- Cluster timestamps with a dynamic strategy -----------------------
    let cts = ClusterEngine::run(&trace, MergeOnFirst::new(2));
    println!(
        "\nmerge-on-1st, maxCS=2: {} cluster receives, {} merges, final clusters: {:?}",
        cts.num_cluster_receives(),
        cts.num_merges(),
        cts.final_partition().clusters()
    );

    // --- Precedence queries agree across all schemes ----------------------
    let oracle = Oracle::compute(&trace);
    for (x, y, label) in [
        (a.event(), c, "A → C (via D, E)"),
        (bb.event(), f, "B → F (via G, H)"),
        (d, i, "D → I (false: no path)"),
        (g, c, "G → C (false: concurrent)"),
    ] {
        let want = oracle.happened_before(&trace, x, y);
        let got_fm = fm.precedes(&trace, x, y);
        let got_ct = cts.precedes(&trace, x, y);
        assert_eq!(want, got_fm);
        assert_eq!(want, got_ct);
        println!("  {label:<28} => {want}");
    }

    // --- Space under the paper's fixed-vector encoding ---------------------
    let report = SpaceReport::measure(&cts, Encoding::paper_default(3, 2));
    println!(
        "\nspace: cluster {} elements vs Fidge/Mattern {} (ratio {:.3})",
        report.cluster_elements, report.fm_elements, report.ratio
    );
}
