//! Strategy tuning: sweep the maximum-cluster-size knob across strategies on
//! a workload of your choice and print the ratio curves — a miniature of the
//! paper's Figures 4 and 5 for your own traces.
//!
//! ```text
//! cargo run --release --example strategy_tuning [-- <workload>]
//! # workload: stencil | web | dce | uniform (default: web)
//! ```

use cluster_timestamps::prelude::*;
use cts_analysis::ascii_plot::{render, Series};
use cts_analysis::metrics;
use cts_analysis::sweep::{sweep, StrategyKind};
use cts_workloads::dce::ThreeTier;
use cts_workloads::spmd::Stencil2D;
use cts_workloads::synthetic::UniformRandom;
use cts_workloads::web::WebServer;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "web".into());
    let trace: Trace = match which.as_str() {
        "stencil" => Stencil2D {
            rows: 8,
            cols: 8,
            iters: 8,
        }
        .generate(3),
        "dce" => ThreeTier {
            clients: 40,
            servers: 8,
            databases: 2,
            transactions: 400,
        }
        .generate(3),
        "uniform" => UniformRandom {
            procs: 64,
            messages: 1500,
        }
        .generate(3),
        _ => WebServer {
            clients: 24,
            workers: 12,
            requests: 600,
            affinity: 0.8,
        }
        .generate(3),
    };
    println!(
        "sweeping {} ({} events, {} processes)\n",
        trace.name(),
        trace.num_events(),
        trace.num_processes()
    );

    let sizes: Vec<usize> = (2..=50).collect();
    let strategies = [
        StrategyKind::StaticGreedy,
        StrategyKind::MergeOnFirst,
        StrategyKind::MergeOnNth { threshold: 5.0 },
        StrategyKind::MergeOnNth { threshold: 10.0 },
    ];
    let mut curves = Vec::new();
    for s in strategies {
        let r = sweep(&trace, s, &sizes);
        let (best_size, best_ratio) = metrics::best(&r);
        let good = metrics::good_sizes(&r, 0.20);
        let range = metrics::longest_consecutive_run(&good);
        println!(
            "{:<16} best {:.3} @ size {:<3} within-20% range {:?}  smoothness {:.3}",
            s.label(),
            best_ratio,
            best_size,
            range,
            metrics::max_adjacent_jump(&r)
        );
        curves.push(r);
    }

    let series: Vec<Series<'_>> = curves
        .iter()
        .map(|r| Series {
            name: Box::leak(r.strategy.label().into_boxed_str()),
            points: r.points().map(|(x, y)| (x as f64, y)).collect(),
        })
        .collect();
    println!("\nratio of cluster-timestamp size to Fidge/Mattern size:");
    println!("{}", render(&series, 64, 18));
    println!("pick the static curve's flat region — that is the paper's headline result.");
}
