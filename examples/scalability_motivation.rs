//! The §1.1 motivation, measured: why Fidge/Mattern timestamps are a
//! scalability bottleneck for observation tools, and what cluster timestamps
//! buy back.
//!
//! ```text
//! cargo run --release --example scalability_motivation
//! ```

use cluster_timestamps::prelude::*;
use cts_core::fm::FmStore;
use cts_store::queries::{greatest_concurrent, FmBackend};
use cts_store::timestamp_cache::TimestampCache;
use cts_store::vm_sim::PagedTimestampStore;
use cts_workloads::synthetic::PlantedClusters;

fn main() {
    // The paper's thought experiment: 1000 processes × 1000 events each.
    println!("== precomputed storage (analytic) ==");
    let bytes = 1_000u64 * 1_000 * 1_000 * 4;
    println!(
        "1000 procs × 1000 events/proc × 1000-element vectors × 4 B = {:.2} GB",
        bytes as f64 / 1e9
    );

    // Measured at 400 processes (so the example runs in seconds).
    let n = 400u32;
    let trace = PlantedClusters {
        procs: n,
        groups: 40,
        messages: n * 10,
        p_intra: 0.9,
    }
    .generate(1);
    let fm = FmStore::compute(&trace);
    println!("\n== measured at N={n}, {} events ==", trace.num_events());
    println!(
        "precomputed Fidge/Mattern store: {:.1} MB",
        fm.bytes() as f64 / 1e6
    );

    // Paging: a greatest-concurrent query against paged precomputed stamps.
    let mut paged = PagedTimestampStore::new(&trace, &fm, 1024);
    let probe = trace.at(trace.num_events() / 2).id;
    let _ = greatest_concurrent(&mut paged, &trace, probe);
    println!(
        "one greatest-concurrent query: {} page reads for {} element touches \
         (≈1 page per element — no locality)",
        paged.page_reads(),
        paged.element_touches()
    );

    // Recompute-on-demand: cost of precedence when stamps are not stored.
    println!("\n== recompute-forward (POET/OLT style) cost vs N ==");
    for procs in [50u32, 100, 200, 400] {
        let t = PlantedClusters {
            procs,
            groups: procs / 10,
            messages: 4000, // fixed event count
            p_intra: 0.9,
        }
        .generate(2);
        let mut cache = TimestampCache::new(&t, 64);
        let e0 = EventId::new(ProcessId(0), EventIndex(1));
        for k in 0..50 {
            let f = t.at((k * 113 + 7) % t.num_events()).id;
            let _ = cache.precedes(e0, f);
        }
        let (ops, _, q) = cache.cost();
        println!(
            "  N={procs:>4}: {:>9} element ops per precedence query (same event count)",
            ops / q
        );
    }

    // What cluster timestamps buy: same trace, cluster stamps, same queries.
    println!("\n== cluster timestamps on the N={n} trace ==");
    let cts = ClusterEngine::run(&trace, MergeOnNth::new(n, 13, 5.0));
    let report = SpaceReport::measure(&cts, Encoding::paper_default(n, 13));
    println!(
        "space ratio vs Fidge/Mattern: {:.3} ({} cluster receives / {} events)",
        report.ratio, report.num_cluster_receives, report.num_events
    );
    let mut fm_backend = FmBackend(&fm);
    let a = greatest_concurrent(&mut fm_backend, &trace, probe);
    let b = greatest_concurrent(&mut cts_store::queries::ClusterBackend(&cts), &trace, probe);
    assert_eq!(a, b, "cluster timestamps answer queries identically");
    println!("greatest-concurrent answers identical to Fidge/Mattern: yes");
}
