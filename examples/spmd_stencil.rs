//! An SPMD workload end-to-end: generate a 2-D stencil computation (the
//! paper's PVM nearest-neighbour class), cluster it statically with the
//! Figure 3 algorithm, and show how the clustering recovers the grid's
//! communication locality.
//!
//! ```text
//! cargo run --release --example spmd_stencil
//! ```

use cluster_timestamps::prelude::*;
use cts_model::comm::CommMatrix;
use cts_workloads::spmd::Stencil2D;

fn main() {
    let workload = Stencil2D {
        rows: 8,
        cols: 8,
        iters: 10,
    };
    let trace = workload.generate(42);
    println!(
        "generated {}: {} events, {} messages over {} processes",
        trace.name(),
        trace.num_events(),
        trace.num_messages(),
        trace.num_processes()
    );

    // Static two-pass pipeline at the paper's recommended maxCS = 13.
    let (clustering, cts) = static_pipeline(&trace, 13);
    println!(
        "\nFigure-3 greedy clustering, maxCS=13 → {} clusters (largest {})",
        clustering.num_clusters(),
        clustering.max_cluster_size()
    );
    for (i, cluster) in clustering.clusters().iter().enumerate().take(6) {
        // Display as grid coordinates to make the recovered locality visible.
        let coords: Vec<String> = cluster
            .iter()
            .map(|p| format!("({},{})", p.0 / 8, p.0 % 8))
            .collect();
        println!("  cluster {i}: {}", coords.join(" "));
    }

    println!(
        "\ncluster receives: {} of {} messages cross clusters",
        cts.num_cluster_receives(),
        trace.num_messages()
    );

    // Compare against the dynamic strategies at the same size.
    let matrix = CommMatrix::from_trace(&trace);
    let intra: u64 = clustering
        .clusters()
        .iter()
        .map(|c| {
            let mut sum = 0;
            for (i, &p) in c.iter().enumerate() {
                for &q in &c[i + 1..] {
                    sum += matrix.count(p, q);
                }
            }
            sum
        })
        .sum();
    println!(
        "communication captured inside clusters: {intra}/{} occurrences",
        matrix.total()
    );

    let enc = Encoding::paper_default(trace.num_processes(), 13);
    let r_static = SpaceReport::measure(&cts, enc);
    let r_first = SpaceReport::measure(&ClusterEngine::run(&trace, MergeOnFirst::new(13)), enc);
    let r_nth = SpaceReport::measure(
        &ClusterEngine::run(&trace, MergeOnNth::new(trace.num_processes(), 13, 10.0)),
        enc,
    );
    println!("\nspace ratio vs Fidge/Mattern at maxCS=13:");
    println!("  static greedy       {:.3}", r_static.ratio);
    println!("  merge-on-1st        {:.3}", r_first.ratio);
    println!("  merge-on-Nth (τ=10) {:.3}", r_nth.ratio);

    // Spot-check precedence exactness against the oracle on a sample.
    let oracle = Oracle::compute(&trace);
    let ids: Vec<EventId> = trace.all_event_ids().step_by(37).collect();
    let mut checked = 0;
    for &e in &ids {
        for &f in &ids {
            assert_eq!(
                cts.precedes(&trace, e, f),
                oracle.happened_before(&trace, e, f)
            );
            checked += 1;
        }
    }
    println!("\nverified {checked} precedence queries against the ground-truth oracle");
}
