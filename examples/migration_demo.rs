//! The paper's future work, demonstrated: processes whose communication
//! affinity *drifts* defeat merge-based clustering (clusters can only grow
//! and never reconsider), while the migration-capable engine follows the
//! processes to their new partners (§5, second variant).
//!
//! ```text
//! cargo run --release --example migration_demo
//! ```

use cluster_timestamps::prelude::*;
use cts_core::cluster::MigratingEngine;
use cts_workloads::synthetic::DriftingAffinity;

fn main() {
    println!("drift   merge-1st  merge-Nth(5)  migrating   (migrations)");
    println!("-----   ---------  ------------  ---------   ------------");
    for drift in [0.0, 0.25, 0.5, 0.75] {
        let trace = DriftingAffinity {
            procs: 60,
            groups: 6,
            messages_per_phase: 1500,
            drift_fraction: drift,
        }
        .generate(7);
        let n = trace.num_processes();
        let max_cs = 12;
        let enc = Encoding::paper_default(n, max_cs);

        let m1 = SpaceReport::measure(&ClusterEngine::run(&trace, MergeOnFirst::new(max_cs)), enc);
        let mn = SpaceReport::measure(
            &ClusterEngine::run(&trace, MergeOnNth::new(n, max_cs, 5.0)),
            enc,
        );
        let mig = MigratingEngine::run(&trace, max_cs, 5.0, 4);
        let mig_report = mig.space(enc);

        println!(
            "{drift:>5.2}   {:>9.3}  {:>12.3}  {:>9.3}   ({})",
            m1.ratio,
            mn.ratio,
            mig_report.ratio,
            mig.num_migrations()
        );

        // All engines stay exact regardless of drift — verify on a sample.
        let oracle = Oracle::compute(&trace);
        let ids: Vec<EventId> = trace.all_event_ids().step_by(97).collect();
        for &e in &ids {
            for &f in &ids {
                assert_eq!(
                    mig.precedes(&trace, e, f),
                    oracle.happened_before(&trace, e, f)
                );
            }
        }
    }
    println!("\nhigher drift → merge-based clusters freeze on phase-1 structure; the");
    println!("migrating engine re-homes drifted processes (at the cost of full-width");
    println!("marker stamps), keeping the ratio down.");
}
