//! # cluster-timestamps
//!
//! A complete, from-scratch Rust reproduction of *Clustering Strategies for
//! Cluster Timestamps* (Paul A.S. Ward, Tao Huang, David J. Taylor — ICPP
//! 2004): self-organizing hierarchical cluster timestamps for scalable
//! precedence determination in parallel-program observation tools, together
//! with the static and dynamic clustering strategies the paper evaluates,
//! the Fidge/Mattern baseline, the monitoring-entity substrate, related-work
//! baselines, synthetic workload generators, and the experiment harness that
//! regenerates the paper's figures and claims.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`model`] (`cts-model`): events, traces, the happened-before oracle;
//! - [`workloads`] (`cts-workloads`): synthetic PVM/Java/DCE trace suites;
//! - [`core`] (`cts-core`): Fidge/Mattern + cluster timestamps + strategies;
//! - [`baselines`] (`cts-baselines`): Fowler/Zwaenepoel,
//!   Singhal/Kshemkalyani, Garg/Skawratananond;
//! - [`store`] (`cts-store`): B+-tree event store, timestamp caches, paging
//!   simulator, queries;
//! - [`analysis`] (`cts-analysis`): the figure/claim experiment drivers.
//!
//! ## Quickstart
//!
//! ```
//! use cluster_timestamps::prelude::*;
//!
//! // Record a tiny computation: P0 sends to P1, P1 syncs with P2.
//! let mut b = TraceBuilder::new(3);
//! let s = b.send(ProcessId(0), ProcessId(1)).unwrap();
//! let r = b.receive(ProcessId(1), s).unwrap();
//! b.sync(ProcessId(1), ProcessId(2)).unwrap();
//! let trace = b.finish("quickstart");
//!
//! // Timestamp it with the dynamic merge-on-1st strategy, clusters ≤ 2.
//! let cts = ClusterEngine::run(&trace, MergeOnFirst::new(2));
//! assert!(cts.precedes(&trace, s.event(), r));
//!
//! // Space against the Fidge/Mattern baseline under the paper's encoding.
//! let report = SpaceReport::measure(&cts, Encoding::paper_default(3, 2));
//! assert!(report.ratio < 1.0);
//! ```

pub use cts_analysis as analysis;
pub use cts_baselines as baselines;
pub use cts_core as core;
pub use cts_daemon as daemon;
pub use cts_model as model;
pub use cts_store as store;
pub use cts_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use cts_core::cluster::{ClusterEngine, ClusterTimestamps, Encoding, SpaceReport};
    pub use cts_core::clustering::{greedy_pairwise, Clustering};
    pub use cts_core::fm::{FmEngine, FmStore};
    pub use cts_core::strategy::{MergeOnFirst, MergeOnNth, MergePolicy, NeverMerge};
    pub use cts_core::two_pass::static_pipeline;
    pub use cts_model::{
        Event, EventId, EventIndex, EventKind, Oracle, ProcessId, Trace, TraceBuilder,
    };
    pub use cts_workloads::Workload;
}
