//! Time-travel integration tests (PR 8): retained-epoch `QueryAsOf*`,
//! `ListEpochs`, `ReplayInterval`, and the retention machinery behind
//! them — against live daemons over TCP loopback.
//!
//! The correctness anchor is the same delivery-order invariance the rest
//! of the suite leans on, applied *per epoch*: a retained epoch is an
//! immutable published snapshot of some delivered prefix, so the daemon's
//! as-of answers must equal an offline engine run over exactly that
//! prefix — which `ReplayInterval` hands back verbatim for the test to
//! rebuild.

use cts_core::strategy::MergeOnFirst;
use cts_core::ClusterEngine;
use cts_daemon::server::{Daemon, DaemonConfig};
use cts_daemon::wire::{code, read_msg, write_msg, Msg, PROTOCOL, WAL_FORMAT};
use cts_daemon::Client;
use cts_model::{EventId, Trace};
use cts_workloads::{spmd::Stencil1D, Workload};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const COMP: &str = "timetravel";
const MCS: u32 = 4;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cts-timetravel-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn trace() -> Trace {
    Stencil1D { procs: 8, iters: 6 }.generate(11)
}

/// A negotiated, session-bound client (the level-3 verbs require both).
fn session(addr: SocketAddr, n: u32) -> Client {
    let mut c = Client::connect(addr).expect("connect");
    let (protocol, _) = c.proto_hello().expect("proto hello");
    assert!(protocol >= 3, "daemon negotiated protocol {protocol}");
    c.hello(COMP, n, MCS).expect("hello");
    c
}

/// Stream `events` through an existing session and barrier on `expected`.
fn stream_and_flush(c: &mut Client, events: &[cts_model::Event], expected: u64) -> (u64, u64) {
    c.stream_events(events, 64).expect("stream");
    let (epoch, delivered) = c.flush(expected).expect("flush");
    assert_eq!(delivered, expected);
    (epoch, delivered)
}

/// Offline oracle over an arbitrary delivered prefix.
fn offline(prefix: &Trace) -> cts_core::ClusterTimestamps {
    ClusterEngine::run(prefix, MergeOnFirst::new(MCS as usize))
}

/// Prime-stride pair sample over `ids` (same strides as the loadgen).
fn sample_pairs(ids: &[EventId], count: usize) -> Vec<(EventId, EventId)> {
    (0..count)
        .map(|k| {
            (
                ids[(k * 7919) % ids.len()],
                ids[(k * 104_729 + 13) % ids.len()],
            )
        })
        .collect()
}

// ---- raw-wire helpers (typed errors surface as io::Error in Client) ----

fn raw(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s
}

fn call(s: &mut TcpStream, msg: &Msg) -> Msg {
    write_msg(s, msg).expect("send");
    read_msg(s).expect("recv").expect("peer hung up")
}

fn negotiate(s: &mut TcpStream) {
    match call(
        s,
        &Msg::ProtoHello {
            protocol_max: PROTOCOL,
            wal_max: WAL_FORMAT,
        },
    ) {
        Msg::ProtoHelloAck { protocol, .. } => assert!(protocol >= 3),
        other => panic!("ProtoHello answered {other:?}"),
    }
}

fn hello(s: &mut TcpStream, n: u32) {
    match call(
        s,
        &Msg::Hello {
            computation: COMP.into(),
            num_processes: n,
            max_cluster_size: MCS,
        },
    ) {
        Msg::HelloAck { .. } => {}
        other => panic!("hello answered {other:?}"),
    }
}

// ---- the scenarios ----

/// An as-of query at a retained epoch answers from the snapshot that was
/// published *then*, bit-identically: the interval replay returns exactly
/// the delivered prefix of publish time, and every as-of precedes/gc/
/// window answer equals the offline engine over that prefix — no matter
/// how far the head has moved since.
#[test]
fn asof_answers_are_bit_identical_to_publish_time_snapshot() {
    let t = trace();
    let n = t.num_events();
    let half = n / 2;
    let daemon = Daemon::start(DaemonConfig::default()).expect("daemon");
    let mut c = session(daemon.local_addr(), t.num_processes());

    // Publish an epoch covering exactly the first half (one in-order
    // client, so the daemon's delivery order is the trace order).
    let (epoch_half, _) = stream_and_flush(&mut c, &t.events()[..half], half as u64);
    // Move the head well past it.
    let (epoch_full, _) = stream_and_flush(&mut c, &t.events()[half..], n as u64);
    assert!(epoch_full > epoch_half);

    // The replayed interval is the publish-time prefix, verbatim.
    let replayed = c.replay_interval(0, epoch_half).expect("replay");
    assert_eq!(replayed[..], t.events()[..half]);

    // And the as-of answers are the offline engine's over that prefix.
    let prefix =
        Trace::from_delivery_order(COMP, t.num_processes(), replayed).expect("valid prefix");
    let oracle = offline(&prefix);
    let ids: Vec<EventId> = prefix.all_event_ids().collect();
    for (e, f) in sample_pairs(&ids, 200) {
        let got = c.asof_precedes(epoch_half, e, f).expect("as-of precedes");
        assert_eq!(got, oracle.precedes(&prefix, e, f), "precedes({e}, {f})");
    }
    for k in 0..4usize {
        let e = ids[(k * 15_485_863 + 3) % ids.len()];
        let got = c.asof_greatest_concurrent(epoch_half, e).expect("as-of gc");
        let want = cts_store::queries::greatest_concurrent(
            &mut cts_store::queries::ClusterBackend(&oracle),
            &prefix,
            e,
        );
        assert_eq!(got, want, "greatest_concurrent({e})");
    }
    let p0 = cts_model::ProcessId(0);
    let upto = prefix.process_len(p0) as u32 + 1;
    let got = c.asof_window(epoch_half, 0, 1, upto).expect("as-of window");
    let want: Vec<EventId> = prefix.process_events(p0).collect();
    assert_eq!(got, want);

    // Sanity: the head answers differently where the second half added
    // precedence (the as-of path is not just reading the head store).
    let head_ids: Vec<EventId> = t.all_event_ids().collect();
    assert!(head_ids.len() > ids.len());

    c.goodbye().expect("goodbye");
    daemon.shutdown();
}

/// A GC'd epoch is gone: with `retain_epochs = 2` and a fine publish
/// cadence, early epochs are retired, every time-travel verb answers
/// `EPOCH_RETIRED` for them (typed, connection survives), and the verbs
/// are refused outright without level-3 negotiation.
#[test]
fn retired_epoch_gets_typed_error_and_gate_requires_level3() {
    let t = trace();
    let n = t.num_events();
    let daemon = Daemon::start(DaemonConfig {
        retain_epochs: 2,
        epoch_every: 16,
        ..DaemonConfig::default()
    })
    .expect("daemon");

    let mut c = session(daemon.local_addr(), t.num_processes());
    // Fine-grained frames so the cadence actually fires between flushes.
    c.stream_events(t.events(), 16).expect("stream");
    c.flush(n as u64).expect("flush");

    let epochs = c.list_epochs().expect("list epochs");
    assert!(!epochs.is_empty() && epochs.len() <= 2, "cap 2: {epochs:?}");
    let oldest_retained = epochs[0].0;
    assert!(
        oldest_retained > 1,
        "epoch 1 must have been retired under the cap (retained: {epochs:?})"
    );
    let e0 = t.events()[0].id;

    // Typed EPOCH_RETIRED for every as-of verb at the dead epoch; the
    // connection keeps serving afterwards.
    let mut s = raw(daemon.local_addr());
    negotiate(&mut s);
    hello(&mut s, t.num_processes());
    for msg in [
        Msg::QueryAsOfPrecedes {
            epoch: 1,
            e: e0,
            f: e0,
        },
        Msg::QueryAsOfGc { epoch: 1, e: e0 },
        Msg::QueryAsOfWindow {
            epoch: 1,
            process: 0,
            from: 1,
            to: 4,
            limit: 0,
        },
        Msg::ReplayInterval {
            from_epoch: 0,
            to_epoch: 1,
            cursor: 0,
            limit: 0,
        },
        // An epoch from the future is equally "not retained".
        Msg::QueryAsOfPrecedes {
            epoch: 1 << 40,
            e: e0,
            f: e0,
        },
    ] {
        match call(&mut s, &msg) {
            Msg::Error { code: cd, message } => {
                assert_eq!(cd, code::EPOCH_RETIRED, "{msg:?}: {message}");
                assert!(message.contains("not retained"), "{message}");
            }
            other => panic!("{msg:?} answered {other:?}"),
        }
    }
    // The oldest *retained* epoch still answers on the same connection.
    match call(
        &mut s,
        &Msg::QueryAsOfPrecedes {
            epoch: oldest_retained,
            e: e0,
            f: e0,
        },
    ) {
        Msg::PrecedesResult { epoch, .. } => assert_eq!(epoch, oldest_retained),
        other => panic!("retained-epoch query answered {other:?}"),
    }
    drop(s);

    // Without ProtoHello, the whole verb family is UNSUPPORTED.
    let mut s = raw(daemon.local_addr());
    hello(&mut s, t.num_processes());
    match call(&mut s, &Msg::ListEpochs) {
        Msg::Error { code: cd, .. } => assert_eq!(cd, code::UNSUPPORTED),
        other => panic!("un-negotiated ListEpochs answered {other:?}"),
    }
    drop(s);

    c.goodbye().expect("goodbye");
    daemon.shutdown();
}

/// A pinned epoch survives arbitrary retention pressure: while a pin is
/// held the GC skips it (so an in-flight as-of query never loses its
/// snapshot), and once the pin drops the next sweep retires it.
#[test]
fn pinned_epoch_survives_retention_pressure_until_unpinned() {
    use cts_daemon::pipeline::{Computation, ComputationConfig};
    let t = trace();
    let n = t.num_events();
    let comp = Computation::spawn(ComputationConfig {
        name: "pin-pressure".into(),
        num_processes: t.num_processes(),
        max_cluster_size: MCS,
        strategy: cts_daemon::shard::StampStrategy::Merge1st {
            max_cluster_size: MCS as usize,
        },
        queue_capacity: 8,
        epoch_every: 16,
        shards: 1,
        auto_scale: false,
        balance: false,
        pin_cores: false,
        placement: None,
        durability: None,
        query_cache_capacity: 0,
        // Cap 1: the pinned epoch + the newest head put the ring over cap
        // for the whole pressure phase, so surviving it is purely the
        // pin's doing — and the unpin is immediately collectable.
        retain_epochs: 1,
        retain_bytes: 0,
    });

    // First quarter: publish at least one epoch, then pin the oldest.
    let quarter = n / 4;
    for chunk in t.events()[..quarter].chunks(16) {
        comp.enqueue_events(chunk.to_vec()).unwrap();
    }
    comp.flush(quarter as u64, Duration::from_secs(30)).unwrap();
    let retainer = comp.retainer().clone();
    let victim = retainer.list().first().expect("an epoch").epoch;
    let pin = retainer.pin(victim).expect("pin a live epoch");

    // Pressure: the rest of the trace publishes far more than cap 2.
    for chunk in t.events()[quarter..].chunks(16) {
        comp.enqueue_events(chunk.to_vec()).unwrap();
    }
    comp.flush(n as u64, Duration::from_secs(30)).unwrap();
    assert!(
        retainer.retired() > 0,
        "cadence produced no retirements; the pressure is vacuous"
    );
    let listed = retainer.list();
    let entry = listed
        .iter()
        .find(|i| i.epoch == victim)
        .expect("pinned epoch was collected under pressure");
    assert!(entry.pinned);
    assert_eq!(pin.epoch(), victim);
    assert!(retainer.get(victim).is_some());

    // Unpinning releases it to the very next sweep.
    drop(pin);
    assert!(
        retainer.get(victim).is_none(),
        "unpinned over-cap epoch was not retired"
    );
    comp.shutdown();
}

/// An interval replay cursor started before an epoch publish resumes
/// exactly — no gap, no overlap — because the chunks come from the
/// retained `to_epoch` snapshot, not from the moving head.
#[test]
fn replay_cursor_resumes_exactly_across_epoch_publish() {
    let t = trace();
    let n = t.num_events();
    let half = n / 2;
    let daemon = Daemon::start(DaemonConfig::default()).expect("daemon");
    let mut c = session(daemon.local_addr(), t.num_processes());
    let (epoch_half, _) = stream_and_flush(&mut c, &t.events()[..half], half as u64);

    // First page of the replay, deliberately tiny.
    let (first_offset, page1, cursor) = c.replay_page(0, epoch_half, 0, 7).expect("page 1");
    assert_eq!(first_offset, 1);
    assert_eq!(page1.len(), 7);
    assert_ne!(cursor, 0);

    // An epoch publish lands in the middle of the scan.
    let (epoch_full, _) = stream_and_flush(&mut c, &t.events()[half..], n as u64);
    assert!(epoch_full > epoch_half);

    // Resume: the remaining pages continue at the saved cursor and the
    // concatenation is the half-prefix, verbatim — the new head epoch
    // never leaks into the interval.
    let mut all = page1;
    let mut cursor = cursor;
    while cursor != 0 {
        let (off, page, next) = c.replay_page(0, epoch_half, cursor, 7).expect("resume");
        assert_eq!(off, cursor, "chunk did not start at the requested cursor");
        assert!(!page.is_empty());
        all.extend(page);
        cursor = next;
    }
    assert_eq!(all[..], t.events()[..half]);

    c.goodbye().expect("goodbye");
    daemon.shutdown();
}

/// A follower serves time travel too, but only over epochs covering
/// prefixes the leader durably acked: every epoch the follower lists
/// replays to a prefix of the leader's delivery order no longer than the
/// leader's durable watermark, and the as-of answers at the newest such
/// epoch match the offline engine over that prefix.
#[test]
fn follower_answers_asof_at_leader_acked_epochs_only() {
    let dir = tmpdir("follower-asof");
    let t = trace();
    let n = t.num_events();
    let leader = Daemon::start(DaemonConfig {
        data_dir: Some(dir.clone()),
        sync_window: Duration::ZERO,
        epoch_every: 32,
        ..DaemonConfig::default()
    })
    .expect("leader");
    let mut lc = session(leader.local_addr(), t.num_processes());
    lc.stream_events(t.events(), 32).expect("stream");
    lc.flush(n as u64).expect("flush");
    let leader_acked = {
        let stats = lc.stats().expect("leader stats");
        assert_eq!(stats.events_ingested, n as u64);
        n as u64
    };

    let follower = Daemon::start(DaemonConfig {
        follow: Some(leader.local_addr()),
        sync_window: Duration::ZERO,
        epoch_every: 32,
        ..DaemonConfig::default()
    })
    .expect("follower");
    // Converge: the follower's head must cover the whole computation.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut fc = loop {
        let mut attempt = Client::connect(follower.local_addr()).expect("connect");
        if attempt.proto_hello().is_ok()
            && attempt.hello(COMP, t.num_processes(), MCS).is_ok()
            && attempt
                .stats()
                .is_ok_and(|s| s.repl_applied == n as u64 && s.snapshots_published >= 1)
        {
            break attempt;
        }
        assert!(Instant::now() < deadline, "follower did not converge");
        std::thread::sleep(Duration::from_millis(20));
    };

    let epochs = fc.list_epochs().expect("follower epochs");
    assert!(!epochs.is_empty(), "follower retained no epochs");
    for &(epoch, delivered) in &epochs {
        // Leader-acked only: nothing beyond the durable watermark, and
        // the replayed prefix is the leader's delivery order verbatim
        // (one in-order client, so that is the trace order).
        assert!(
            delivered <= leader_acked,
            "follower epoch {epoch} covers {delivered} > leader-acked {leader_acked}"
        );
        let replayed = fc.replay_interval(0, epoch).expect("follower replay");
        assert_eq!(replayed[..], t.events()[..delivered as usize]);
    }

    // Differential as-of at the newest follower epoch.
    let &(newest, delivered) = epochs.last().unwrap();
    let prefix = Trace::from_delivery_order(
        COMP,
        t.num_processes(),
        t.events()[..delivered as usize].to_vec(),
    )
    .expect("valid prefix");
    let oracle = offline(&prefix);
    let ids: Vec<EventId> = prefix.all_event_ids().collect();
    for (e, f) in sample_pairs(&ids, 150) {
        let got = fc.asof_precedes(newest, e, f).expect("follower as-of");
        assert_eq!(got, oracle.precedes(&prefix, e, f), "precedes({e}, {f})");
    }
    // An epoch the follower never published is refused, typed.
    let err = fc
        .asof_precedes(newest + 1000, ids[0], ids[0])
        .expect_err("unknown epoch must fail");
    assert!(err.to_string().contains("not retained"), "{err}");

    fc.goodbye().expect("goodbye");
    lc.goodbye().expect("goodbye");
    follower.shutdown();
    leader.shutdown();
}
