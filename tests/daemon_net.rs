//! Network front-end regression suite: the epoll poller pool and the
//! thread-per-connection backend, exercised through real loopback sockets.
//!
//! What is pinned down here:
//!
//! - the C10K claim in-process: thousands of idle connections held open on
//!   the epoll backend while the differential mini-suite runs clean;
//! - the connection-lifecycle bugfixes of the thread backend — the handle
//!   registry stays bounded under churn, and spawn exhaustion refuses with
//!   a wire `OVERLOADED` error instead of aborting the daemon;
//! - the event loop's wire state machine: frames arriving one byte at a
//!   time are reassembled, and a flood of pipelined batch queries whose
//!   replies exceed the write buffer comes back complete and in order;
//! - timerfd-driven group commit: with a nonzero sync window the WAL is
//!   synced by the clock, without any `Flush` barrier on the wire.
//!
//! The thread backend also re-runs the differential soak (mini suite), so
//! both front ends stay pinned to the offline engine.

use cts_daemon::loadgen::{self, LoadConfig};
use cts_daemon::server::{Daemon, DaemonConfig, NetBackend};
use cts_daemon::wire::{code, read_msg, write_msg, Msg};
use cts_daemon::Client;
use cts_workloads::suite::mini_suite;
use cts_workloads::{spmd::Stencil1D, Workload};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cts-net-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Hello over a raw socket; returns the reply.
fn raw_hello(s: &mut TcpStream, computation: &str, n: u32) -> Msg {
    write_msg(
        s,
        &Msg::Hello {
            computation: computation.into(),
            num_processes: n,
            max_cluster_size: 4,
        },
    )
    .expect("write hello");
    read_msg(s).expect("read reply").expect("reply frame")
}

// ---------------------------------------------------------------------------
// C10K: idle connections are nearly free on the epoll backend.
// ---------------------------------------------------------------------------

/// Hold as many idle connections as the fd budget allows (both ends of
/// every loopback connection count against this one process), then run the
/// differential mini-suite through the same daemon. The bar: every answer
/// still matches the offline engine, with zero mismatches, while the
/// poller pool carries the idle herd.
#[cfg(target_os = "linux")]
#[test]
fn c10k_idle_connections_with_clean_differential() {
    let nofile = cts_daemon::netpoll::raise_nofile_to_hard().unwrap_or(1024);
    // Keep slack for the suite's own connections, WAL-less computations,
    // and the test harness; each held connection costs two fds in-process.
    let n = (((nofile.saturating_sub(1500)) / 2) as usize).min(10_000);
    assert!(
        n >= 1000,
        "fd limit too low to say anything useful: {nofile}"
    );

    // The default backend on Linux is the epoll poller pool.
    let daemon = Daemon::start(DaemonConfig::default()).expect("bind");
    let addr = daemon.local_addr();

    let held = loadgen::hold_idle_conns(addr, n).expect("hold idle connections");
    assert_eq!(held.len(), n);
    assert!(daemon.live_connections() >= n as u64);

    let report = loadgen::run(
        &mini_suite(),
        &LoadConfig {
            addr,
            connections: 8,
            seed: 610,
            ..LoadConfig::default()
        },
    )
    .expect("differential run");
    assert_eq!(
        report.mismatches, 0,
        "daemon diverged from the offline engine while {n} idle connections were held"
    );
    assert!(daemon.live_connections() >= n as u64);

    drop(held);
    daemon.shutdown();
}

// ---------------------------------------------------------------------------
// Thread backend stays differentially correct.
// ---------------------------------------------------------------------------

#[test]
fn thread_backend_differential_mini_suite() {
    let daemon = Daemon::start(DaemonConfig {
        net: NetBackend::Threads,
        ..DaemonConfig::default()
    })
    .expect("bind");
    let report = loadgen::run(
        &mini_suite(),
        &LoadConfig {
            addr: daemon.local_addr(),
            connections: 8,
            seed: 611,
            ..LoadConfig::default()
        },
    )
    .expect("differential run");
    assert_eq!(report.mismatches, 0);
    daemon.shutdown();
}

// ---------------------------------------------------------------------------
// Lifecycle bugfix 1: the handle registry is bounded under churn.
// ---------------------------------------------------------------------------

/// Regression for the unbounded `shared.conns` push: 10k short-lived
/// connections used to leave 10k dead `JoinHandle`s in the registry (and,
/// before that, 10k unjoined threads' worth of stacks). Finished handles
/// are now reaped on every accept, so after the churn the registry must be
/// bounded by *concurrent* connections — effectively a handful.
#[test]
fn churn_keeps_connection_registry_bounded() {
    let daemon = Daemon::start(DaemonConfig {
        net: NetBackend::Threads,
        ..DaemonConfig::default()
    })
    .expect("bind");
    let addr = daemon.local_addr();

    const CHURN: usize = 10_000;
    for _ in 0..CHURN {
        let mut s = TcpStream::connect(addr).expect("connect");
        write_msg(&mut s, &Msg::Goodbye).expect("goodbye");
        // Wait for the server to close first: the connection thread is done
        // (not merely spawned) before the next connect, so the churn is
        // sequential and the registry bound is meaningful.
        let mut buf = [0u8; 16];
        while s.read(&mut buf).map(|k| k > 0).unwrap_or(false) {}
    }

    // Every connect was either accepted or (on an oversubscribed host where
    // thread exit lags the socket close and the registry transiently fills)
    // refused with OVERLOADED — both paths are closed-by-server, so the
    // churn really happened either way.
    let served = daemon.connections_accepted() + daemon.connections_refused();
    assert!(served >= CHURN as u64, "served only {served} of {CHURN}");
    let len = daemon.conn_registry_len();
    assert!(
        len < 100,
        "handle registry leaked: {len} entries after {CHURN} short-lived connections"
    );
    daemon.shutdown();
}

// ---------------------------------------------------------------------------
// Lifecycle bugfix 2: spawn exhaustion degrades to OVERLOADED.
// ---------------------------------------------------------------------------

/// With the spawn failpoint set, a new connection is answered with a wire
/// `OVERLOADED` error and closed — the accept loop keeps going instead of
/// panicking the daemon. Clearing the failpoint restores service on the
/// same listener.
fn overload_refusal(net: NetBackend) {
    let daemon = Daemon::start(DaemonConfig {
        net,
        ..DaemonConfig::default()
    })
    .expect("bind");
    let addr = daemon.local_addr();

    // Healthy first: the backend serves a session.
    let mut c = Client::connect(addr).expect("connect");
    c.hello("overload", 2, 4).expect("hello");
    c.goodbye().expect("goodbye");

    daemon.inject_spawn_failure(true);
    for i in 0..3 {
        let mut s = TcpStream::connect(addr).expect("connect while failing");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        match read_msg(&mut s).expect("read refusal") {
            Some(Msg::Error { code: c, .. }) => {
                assert_eq!(c, code::OVERLOADED, "refusal {i} had wrong code")
            }
            other => panic!("expected OVERLOADED error, got {other:?}"),
        }
        // The refusal closes the connection.
        let mut buf = [0u8; 8];
        assert_eq!(s.read(&mut buf).unwrap_or(0), 0);
    }
    assert!(daemon.connections_refused() >= 3);

    // Service resumes once spawning works again — same daemon, no restart.
    daemon.inject_spawn_failure(false);
    let mut c = Client::connect(addr).expect("connect after recovery");
    c.hello("overload", 2, 4).expect("hello after recovery");
    c.goodbye().expect("goodbye");
    daemon.shutdown();
}

#[test]
fn overload_refusal_thread_backend() {
    overload_refusal(NetBackend::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn overload_refusal_epoll_backend() {
    overload_refusal(NetBackend::Epoll);
}

// ---------------------------------------------------------------------------
// Event-loop wire machine: partial frames reassemble.
// ---------------------------------------------------------------------------

/// The epoll backend sees whatever byte boundaries the kernel hands it.
/// Feed it a session one byte at a time — Hello, a full event stream, a
/// Flush — and every reply must still come back intact.
#[cfg(target_os = "linux")]
#[test]
fn epoll_reassembles_partial_frames() {
    let daemon = Daemon::start(DaemonConfig::default()).expect("bind");
    let t = Stencil1D { procs: 2, iters: 2 }.generate(17);

    let mut s = TcpStream::connect(daemon.local_addr()).expect("connect");
    s.set_nodelay(true).unwrap();

    let mut frames = Vec::new();
    write_msg(
        &mut frames,
        &Msg::Hello {
            computation: "trickle".into(),
            num_processes: t.num_processes(),
            max_cluster_size: 4,
        },
    )
    .unwrap();
    for b in &frames {
        s.write_all(std::slice::from_ref(b)).expect("write byte");
        std::thread::sleep(Duration::from_micros(300));
    }
    match read_msg(&mut s).expect("read").expect("frame") {
        Msg::HelloAck { .. } => {}
        other => panic!("expected HelloAck, got {other:?}"),
    }

    // Whole trace in one Events frame plus a Flush, still dribbled in
    // small odd-sized chunks that never align with frame boundaries.
    let mut frames = Vec::new();
    write_msg(&mut frames, &Msg::Events(t.events().to_vec())).unwrap();
    write_msg(
        &mut frames,
        &Msg::Flush {
            expected_total: t.num_events() as u64,
        },
    )
    .unwrap();
    for chunk in frames.chunks(7) {
        s.write_all(chunk).expect("write chunk");
        std::thread::sleep(Duration::from_micros(200));
    }
    match read_msg(&mut s).expect("read").expect("frame") {
        Msg::FlushAck { delivered, .. } => assert_eq!(delivered, t.num_events() as u64),
        other => panic!("expected FlushAck, got {other:?}"),
    }

    write_msg(&mut s, &Msg::Goodbye).unwrap();
    daemon.shutdown();
}

// ---------------------------------------------------------------------------
// Event-loop wire machine: write backpressure keeps replies whole.
// ---------------------------------------------------------------------------

/// Pipeline far more batch-query replies than the per-connection write
/// buffer holds: a writer thread floods requests while the reader drags
/// behind, so the connection must park itself on EPOLLOUT (and stop
/// reading) rather than drop or reorder replies. Every reply must come
/// back, in request order — the per-frame batch sizes differ, so order is
/// observable.
#[cfg(target_os = "linux")]
#[test]
fn epoll_write_backpressure_preserves_reply_order() {
    let daemon = Daemon::start(DaemonConfig::default()).expect("bind");
    let t = Stencil1D { procs: 8, iters: 8 }.generate(23);
    let n_events = t.num_events() as u64;

    let mut s = TcpStream::connect(daemon.local_addr()).expect("connect");
    match raw_hello(&mut s, "floodgate", t.num_processes()) {
        Msg::HelloAck { .. } => {}
        other => panic!("expected HelloAck, got {other:?}"),
    }
    for chunk in t.events().chunks(512) {
        write_msg(&mut s, &Msg::Events(chunk.to_vec())).expect("events");
    }
    write_msg(
        &mut s,
        &Msg::Flush {
            expected_total: n_events,
        },
    )
    .expect("flush");
    match read_msg(&mut s).expect("read").expect("frame") {
        Msg::FlushAck { delivered, .. } => assert_eq!(delivered, n_events),
        other => panic!("expected FlushAck, got {other:?}"),
    }

    // 64 pipelined QueryGcBatch frames; reply i carries one slot vector
    // per queried event, so distinct batch sizes tag each reply with its
    // request's identity.
    const FRAMES: usize = 64;
    let ids: Vec<_> = t.all_event_ids().collect();
    let sizes: Vec<usize> = (0..FRAMES).map(|i| 512 - (i % 7)).collect();
    let mut writer = s.try_clone().expect("clone stream");
    let wsizes = sizes.clone();
    let wids = ids.clone();
    let flood = std::thread::spawn(move || {
        for (i, &sz) in wsizes.iter().enumerate() {
            let events: Vec<_> = (0..sz).map(|k| wids[(i + k) % wids.len()]).collect();
            write_msg(&mut writer, &Msg::QueryGcBatch { events }).expect("flood write");
        }
    });

    // Let the flood race ahead so replies pile into the daemon-side write
    // buffer before the first read drains anything. Observed through the
    // stats counter on a *second* connection rather than a fixed sleep:
    // `batch_queries` advances as the daemon serves flood frames and
    // plateaus when either all frames are served or the full write buffer
    // parks the connection on EPOLLOUT — both mean the pile-up happened.
    {
        let mut probe = Client::connect(daemon.local_addr()).expect("stats probe");
        probe
            .hello("floodgate", t.num_processes(), 4)
            .expect("probe hello");
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut last = 0u64;
        let mut stable = 0;
        loop {
            let served = probe.stats().expect("stats").batch_queries;
            if served >= FRAMES as u64 {
                break;
            }
            if served >= 1 && served == last {
                stable += 1;
                // Three unchanged polls with frames served: the write
                // buffer is full and the connection is parked.
                if stable >= 3 {
                    break;
                }
            } else {
                stable = 0;
            }
            last = served;
            assert!(
                Instant::now() < deadline,
                "flood never reached the daemon (batch_queries {served})"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let _ = probe.goodbye();
    }
    for (i, &sz) in sizes.iter().enumerate() {
        match read_msg(&mut s).expect("read").expect("frame") {
            Msg::GcBatchResult { results, .. } => {
                assert_eq!(results.len(), sz, "reply {i} out of order or truncated");
                assert!(results.iter().all(|r| r.is_some()));
            }
            other => panic!("reply {i}: expected GcBatchResult, got {other:?}"),
        }
    }
    flood.join().expect("flood writer");

    write_msg(&mut s, &Msg::Goodbye).unwrap();
    daemon.shutdown();
}

// ---------------------------------------------------------------------------
// Group commit: the clock syncs the WAL, not the Flush barrier.
// ---------------------------------------------------------------------------

/// Stream a durable computation *without ever flushing* and watch the
/// daemon's sync counter: with a nonzero window the WAL barrier must be
/// driven by the clock (timerfd in the epoll set; the wal-clock thread on
/// the thread backend). Once ingest quiesces and the tail is synced, the
/// counter must hold still — clean windows don't issue barriers.
fn group_commit_without_flush(net: NetBackend, dir: &str) {
    let daemon = Daemon::start(DaemonConfig {
        net,
        data_dir: Some(tmpdir(dir)),
        sync_window: Duration::from_millis(25),
        checkpoint_every: 0,
        ..DaemonConfig::default()
    })
    .expect("bind");
    let t = Stencil1D { procs: 4, iters: 4 }.generate(31);

    // Startup recovery of the (empty) data dir refuses requests with
    // RECOVERING; poll readiness with a session-free ProtoHello (creates
    // nothing on the daemon) instead of retrying Hello on a fixed sleep.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let ready = Client::connect(daemon.local_addr())
            .and_then(|mut c| c.proto_hello())
            .is_ok();
        if ready {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never finished startup recovery"
        );
        std::thread::yield_now();
    }
    let mut client = Client::connect(daemon.local_addr()).expect("connect");
    client
        .hello("unflushed", t.num_processes(), 4)
        .expect("hello after readiness");
    client.stream_events(t.events(), 64).expect("stream");
    // No flush. The only sync driver left is the group-commit clock.

    let deadline = Instant::now() + Duration::from_secs(10);
    let synced = loop {
        match daemon.wal_syncs("unflushed") {
            Some(s) if s >= 1 => break s,
            _ if Instant::now() >= deadline => {
                panic!("no clock-driven WAL sync within the deadline")
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    assert!(synced >= 1);

    // Quiesce: wait until the counter stops moving...
    let mut last = synced;
    let stable = loop {
        std::thread::sleep(Duration::from_millis(200));
        let now = daemon.wal_syncs("unflushed").expect("computation exists");
        if now == last {
            break now;
        }
        last = now;
        assert!(
            Instant::now() < deadline,
            "sync counter never quiesced after ingest stopped"
        );
    };
    // ...then hold it against twenty more window ticks: a clean WAL must
    // not pay for barriers it doesn't need.
    std::thread::sleep(Duration::from_millis(500));
    assert_eq!(
        daemon.wal_syncs("unflushed").expect("computation exists"),
        stable,
        "group-commit clock issues barriers with nothing to sync"
    );

    client.goodbye().expect("goodbye");
    daemon.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn timerfd_group_commit_epoll_backend() {
    group_commit_without_flush(NetBackend::Epoll, "gc-epoll");
}

#[test]
fn group_commit_thread_backend() {
    group_commit_without_flush(NetBackend::Threads, "gc-threads");
}
