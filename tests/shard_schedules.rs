//! Schedule exploration for the sharded ingest path.
//!
//! The daemon's shard workers race: batches land on different shards, wakes
//! cross shard boundaries, and a merge can rebalance ownership mid-stream.
//! `SimShards` runs the *same* cores single-threaded, stepping one message
//! at a time under an explicit `ShardSchedule`, so every interleaving the
//! threaded runtime could exhibit (at message granularity) is reproducible
//! here deterministically.
//!
//! Every schedule must yield the same answers: exact precedence against the
//! causal oracle, and a store holding each event exactly once. Failures
//! shrink to a minimal choice vector before panicking, so a red run prints
//! a schedule short enough to replay by hand.

use cluster_timestamps::prelude::*;
use cts_daemon::{ShardSchedule, SimShards};
use cts_model::linearize::relinearize;
use cts_util::prng::{ChaCha8Rng, Rng};
use cts_workloads::spmd::Stencil1D;
use cts_workloads::synthetic::PlantedClusters;

/// How many events one "inject" scheduler choice feeds into the routing
/// table. Small, so injection interleaves tightly with shard stepping.
const INJECT_CHUNK: usize = 5;

/// Run one complete schedule: interleave injection of `arrival_seed`'s
/// relinearization with shard steps as directed by `choices`, then verify
/// the cut against the causal oracle and the store against the trace.
fn run_schedule(
    t: &Trace,
    shards: usize,
    arrival_seed: u64,
    choices: &[u32],
) -> Result<(), String> {
    let arrivals = relinearize(t, arrival_seed);
    let events = arrivals.events();
    let mut sim = SimShards::new("sched", t.num_processes(), shards, 4);
    let mut sched = ShardSchedule::new(choices.to_vec());
    let mut next = 0;
    loop {
        let runnable = sim.runnable();
        let can_inject = next < events.len();
        let options = runnable.len() + usize::from(can_inject);
        if options == 0 {
            break;
        }
        let pick = sched.choose(options);
        if pick < runnable.len() {
            sim.step(runnable[pick]);
        } else {
            let end = (next + INJECT_CHUNK).min(events.len());
            sim.inject_batch(&events[next..end]);
            next = end;
        }
    }
    verify(t, &mut sim)
}

/// The invariants every schedule must satisfy.
fn verify(t: &Trace, sim: &mut SimShards) -> Result<(), String> {
    if sim.rejected() != 0 {
        return Err(format!("{} events rejected", sim.rejected()));
    }
    if sim.delivered_total() != t.num_events() as u64 {
        return Err(format!(
            "delivered {} of {} events",
            sim.delivered_total(),
            t.num_events()
        ));
    }
    let (trace, cts) = sim.cut();
    if trace.num_events() != t.num_events() {
        return Err(format!(
            "cut assembled {} of {} events",
            trace.num_events(),
            t.num_events()
        ));
    }
    let oracle = Oracle::compute(t);
    let ids: Vec<EventId> = t.all_event_ids().step_by(2).collect();
    for &e in &ids {
        for &f in &ids {
            if cts.precedes(&trace, e, f) != oracle.happened_before(t, e, f) {
                return Err(format!("precedence {e} -> {f} wrong"));
            }
        }
    }
    // Store equivalence: every process row holds exactly its events, in
    // index order, regardless of which shards inserted them (or how often
    // ownership migrated along the way).
    if sim.store().len() != t.num_events() as u64 {
        return Err(format!(
            "store holds {} of {} events",
            sim.store().len(),
            t.num_events()
        ));
    }
    for p in 0..t.num_processes() {
        let expected: Vec<Event> = t
            .events()
            .iter()
            .copied()
            .filter(|e| e.process() == ProcessId(p))
            .collect();
        let got = sim
            .store()
            .process_window(ProcessId(p), 1, expected.len() as u32 + 1);
        if got.len() != expected.len() {
            return Err(format!(
                "P{p}: store row has {} of {} events",
                got.len(),
                expected.len()
            ));
        }
        for (rec, want) in got.iter().zip(&expected) {
            if rec.event != *want {
                return Err(format!("P{p}: store row diverges at {}", want.id));
            }
        }
    }
    Ok(())
}

/// A schedule runner: executes one complete choice vector and verifies the
/// result. Both the plain runner and the autoscaling runner fit, so the
/// shrinker works on either.
type Runner = fn(&Trace, usize, u64, &[u32]) -> Result<(), String>;

/// Shrink a failing choice vector: truncation first (any prefix is a
/// complete schedule — the tail continues round-robin), then zeroing.
/// Panics with the minimal reproducer.
fn shrink_and_panic(
    run: Runner,
    t: &Trace,
    shards: usize,
    arrival_seed: u64,
    choices: Vec<u32>,
    err: String,
) -> ! {
    let mut best = choices;
    let mut best_err = err;
    // Halve while the prefix still fails.
    loop {
        let half = best.len() / 2;
        match run(t, shards, arrival_seed, &best[..half]) {
            Err(e) => {
                best.truncate(half);
                best_err = e;
                if best.is_empty() {
                    break;
                }
            }
            Ok(()) => break,
        }
    }
    // Trim single trailing choices.
    while !best.is_empty() {
        match run(t, shards, arrival_seed, &best[..best.len() - 1]) {
            Err(e) => {
                best.pop();
                best_err = e;
            }
            Ok(()) => break,
        }
    }
    // Canonicalize: zero every choice that can be zeroed.
    for i in 0..best.len() {
        if best[i] == 0 {
            continue;
        }
        let saved = best[i];
        best[i] = 0;
        match run(t, shards, arrival_seed, &best) {
            Err(e) => best_err = e,
            Ok(()) => best[i] = saved,
        }
    }
    panic!(
        "{}: shards={shards} arrival_seed={arrival_seed} \
         minimal schedule {best:?}: {best_err}",
        t.name()
    );
}

fn check_schedules_with(run: Runner, t: &Trace, shards: usize, seeds: u64) {
    for seed in 0..seeds {
        let mut rng = ChaCha8Rng::seed_from_u64(seed * 7919 + shards as u64);
        // Enough choices to steer well past quiescence; the round-robin
        // tail finishes whatever the random prefix leaves queued.
        let choices: Vec<u32> = (0..4 * t.num_events()).map(|_| rng.next_u32()).collect();
        if let Err(e) = run(t, shards, seed, &choices) {
            shrink_and_panic(run, t, shards, seed, choices, e);
        }
    }
}

fn check_random_schedules(t: &Trace, shards: usize, seeds: u64) {
    check_schedules_with(run_schedule, t, shards, seeds);
}

#[test]
fn planted_clusters_random_schedules() {
    // Group-aligned traffic: shards mostly stay independent, with the
    // occasional cross-group message exercising the clock exchange.
    let t = PlantedClusters {
        procs: 6,
        groups: 3,
        messages: 40,
        p_intra: 0.9,
    }
    .generate(5);
    for shards in [2, 3] {
        check_random_schedules(&t, shards, 10);
    }
}

#[test]
fn merge_heavy_random_schedules() {
    // Low intra-group probability: cross-group messages force cluster
    // merges, which force mid-stream rebalances under every schedule.
    let t = PlantedClusters {
        procs: 8,
        groups: 4,
        messages: 60,
        p_intra: 0.55,
    }
    .generate(11);
    for shards in [2, 4] {
        check_random_schedules(&t, shards, 10);
    }
}

#[test]
fn stencil_random_schedules() {
    // Neighbor-exchange SPMD: every process talks across a shard boundary
    // somewhere, so wakes flow between shards constantly.
    let t = Stencil1D { procs: 6, iters: 4 }.generate(3);
    for shards in [2, 3, 4] {
        check_random_schedules(&t, shards, 8);
    }
}

#[test]
fn tiny_trace_exhaustive_schedules() {
    // Exhaustive enumeration over bounded choice vectors for a tiny trace:
    // every base-3 vector of length 7 (2187 schedules — at most 2 runnable
    // shards plus the inject option at any step, so 3 covers every branch;
    // the round-robin tail completes each one deterministically).
    let t = PlantedClusters {
        procs: 4,
        groups: 2,
        messages: 10,
        p_intra: 0.7,
    }
    .generate(2);
    const LEN: usize = 7;
    const BASE: u64 = 3;
    let total = BASE.pow(LEN as u32);
    for code in 0..total {
        let mut c = code;
        let mut choices = Vec::with_capacity(LEN);
        for _ in 0..LEN {
            choices.push((c % BASE) as u32);
            c /= BASE;
        }
        if let Err(e) = run_schedule(&t, 2, 17, &choices) {
            shrink_and_panic(run_schedule, &t, 2, 17, choices, e);
        }
    }
}

#[test]
fn migrated_sync_half_takes_the_exchanged_frontier() {
    // Regression for a stamp-pollution bug. P0's half of a cross-shard sync
    // parks on shard 0 while shard 1 delivers P2's half *and keeps going*
    // within the same batch message. The merge then migrates P0 to shard 1,
    // and the parked half delivers against a frontier row for P2 that has
    // already moved past the sync. The stamp must come from P2's pre-sync
    // frontier (still parked on the clock exchange — this half is its only
    // consumer), not the migrated row; otherwise later P2/P3 events leak
    // into the half's past and manufacture precedence the oracle denies.
    let p0 = ProcessId(0);
    let p1 = ProcessId(1);
    let p2 = ProcessId(2);
    let p3 = ProcessId(3);
    let mut b = TraceBuilder::new(4);
    let (pre_p2, pre_p3) = b.sync(p2, p3).unwrap(); // merges {P2,P3}
    let e_p1 = b.internal(p1).unwrap();
    let e_p0 = b.internal(p0).unwrap();
    let (half_p0, half_p2) = b.sync(p0, p2).unwrap(); // merges {P0,P2,P3}
    let (late_p2, late_p3) = b.sync(p2, p3).unwrap(); // NOT in half_p0's past
    let t = b.finish("migrated-sync");
    let ev = |id: EventId| t.events().iter().copied().find(|e| e.id == id).unwrap();

    // Initial routing (4 procs / 2 shards): P0,P1 on shard 0; P2,P3 on 1.
    let mut sim = SimShards::new("migrated-sync", 4, 2, 4);

    // Phase 1: shard 1 delivers the P2/P3 sync and merges their clusters.
    sim.inject_batch(&[ev(pre_p2), ev(pre_p3)]);
    sim.run_to_quiescence(&mut ShardSchedule::round_robin());

    // Phase 2: shard 0 delivers the internals, then parks P0's sync half:
    // its pre-sync frontier is published on the exchange and shard 0
    // registers for the peer half.
    sim.inject_batch(&[ev(e_p1), ev(e_p0), ev(half_p0)]);
    sim.run_to_quiescence(&mut ShardSchedule::round_robin());
    assert_eq!(
        sim.delivered_total(),
        4,
        "P0's sync half must still be parked"
    );

    // Phase 3: ONE batch on shard 1 delivers P2's half (completing the
    // cross-shard sync and merging {P0} into {P2,P3}) and then the later
    // P2/P3 sync — all before the batch-boundary rebalance migrates P0
    // over with its parked half.
    sim.inject_batch(&[ev(half_p2), ev(late_p2), ev(late_p3)]);
    sim.run_to_quiescence(&mut ShardSchedule::round_robin());

    assert_eq!(sim.shard_of(p0), 1, "the merge must migrate P0 to shard 1");
    let (trace, cts) = sim.cut();
    assert!(
        !cts.precedes(&trace, late_p2, half_p0),
        "post-sync P2 event leaked into the migrated half's stamp"
    );
    assert!(
        !cts.precedes(&trace, late_p3, half_p0),
        "post-sync P3 event leaked into the migrated half's stamp"
    );
    verify(&t, &mut sim).unwrap();
}

/// Like [`run_schedule`], but the scheduler gets two extra options at every
/// step: *split* a rotating target shard (activating a fresh slot and
/// moving half its clusters there) or *retire* it (migrating every cluster
/// off and deactivating the slot) — the same whole-cluster relayouts the
/// daemon's placement engine performs live between batches. An op that is
/// unsafe right now (mid sync pair, straddling cluster, too few clusters,
/// last active shard) defers exactly as the runtime's does. Every schedule
/// must still match the causal oracle bit for bit.
fn run_rescale_schedule(
    t: &Trace,
    shards: usize,
    arrival_seed: u64,
    choices: &[u32],
) -> Result<(), String> {
    let arrivals = relinearize(t, arrival_seed);
    let events = arrivals.events();
    let mut sim = SimShards::new("rescale", t.num_processes(), shards, 4);
    let mut sched = ShardSchedule::new(choices.to_vec());
    let mut next = 0;
    let mut rot = 0usize;
    loop {
        let runnable = sim.runnable();
        let can_inject = next < events.len();
        if runnable.is_empty() && !can_inject {
            break;
        }
        // Last two options: split / retire the rotating target.
        let options = runnable.len() + usize::from(can_inject) + 2;
        let pick = sched.choose(options);
        rot += 1;
        let target = rot % sim.num_shards();
        if pick < runnable.len() {
            sim.step(runnable[pick]);
        } else if can_inject && pick == runnable.len() {
            let end = (next + INJECT_CHUNK).min(events.len());
            sim.inject_batch(&events[next..end]);
            next = end;
        } else if pick == options - 2 {
            sim.split_shard(target); // None = deferred; keep exploring
        } else {
            sim.retire_shard(target); // false = deferred; keep exploring
        }
    }
    verify(t, &mut sim)
}

#[test]
fn rescale_random_schedules() {
    // Group-aligned traffic with cross-group merges: splits and retires
    // race cluster merges, cross-shard wakes, and mid-stream rebalances.
    let t = PlantedClusters {
        procs: 8,
        groups: 4,
        messages: 48,
        p_intra: 0.7,
    }
    .generate(29);
    for shards in [2, 3] {
        check_schedules_with(run_rescale_schedule, &t, shards, 10);
    }
}

#[test]
fn rescale_stencil_random_schedules() {
    // Neighbor-exchange SPMD under live splits/retires: every process
    // talks across a shard boundary somewhere, so relayouts constantly
    // interleave with cross-shard clock traffic.
    let t = Stencil1D { procs: 6, iters: 4 }.generate(3);
    for shards in [2, 3] {
        check_schedules_with(run_rescale_schedule, &t, shards, 8);
    }
}

#[test]
fn split_then_retire_mid_stream() {
    // Deterministic shrink-then-grow: deliver a third of the trace on 2
    // shards, split shard 0, deliver another third on 3, retire the new
    // shard again, and finish on 2. The final cut must still match the
    // oracle exactly — growth and shrink are both exercised mid-stream.
    let t = PlantedClusters {
        procs: 6,
        groups: 3,
        messages: 42,
        p_intra: 0.85,
    }
    .generate(31);
    let arrivals = relinearize(&t, 13);
    let events = arrivals.events();
    let mut sim = SimShards::new("split-retire", t.num_processes(), 2, 4);
    let thirds = [events.len() / 3, 2 * events.len() / 3, events.len()];
    let mut from = 0;
    for (phase, &cut) in thirds.iter().enumerate() {
        sim.inject_batch(&events[from..cut]);
        sim.run_to_quiescence(&mut ShardSchedule::round_robin());
        from = cut;
        match phase {
            0 => {
                let to = sim.split_shard(0).expect("quiescent multi-cluster split");
                assert!(sim.is_active(to), "split must activate the new slot");
            }
            1 => {
                // Retire the slot the split created (index 2).
                assert!(sim.retire_shard(2), "quiescent retire must succeed");
                assert!(!sim.is_active(2), "retired slot must deactivate");
            }
            _ => {}
        }
    }
    verify(&t, &mut sim).unwrap();
}

#[test]
fn duplicate_storms_under_random_schedules() {
    // Every event arrives twice (injected in two full passes with different
    // arrival orders); shards must drop the duplicates no matter which
    // shard is stepped when, including across rebalances.
    let t = PlantedClusters {
        procs: 6,
        groups: 3,
        messages: 36,
        p_intra: 0.6,
    }
    .generate(23);
    for seed in 0..6u64 {
        let first = relinearize(&t, seed);
        let second = relinearize(&t, seed + 100);
        let mut sim = SimShards::new("dup", t.num_processes(), 3, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let choices: Vec<u32> = (0..8 * t.num_events()).map(|_| rng.next_u32()).collect();
        let mut sched = ShardSchedule::new(choices);
        let mut feeds = [first.events().iter(), second.events().iter()];
        let mut exhausted = 0;
        while exhausted < feeds.len() || !sim.runnable().is_empty() {
            let runnable = sim.runnable();
            let options = runnable.len() + (feeds.len() - exhausted);
            let pick = sched.choose(options);
            if pick < runnable.len() {
                sim.step(runnable[pick]);
            } else {
                let idx = exhausted + (pick - runnable.len());
                match feeds[idx].next() {
                    Some(&ev) => sim.inject(ev),
                    None => {
                        // Swap the dry feed out of the option window.
                        feeds.swap(exhausted, idx);
                        exhausted += 1;
                    }
                }
            }
        }
        assert_eq!(
            sim.duplicates(),
            t.num_events() as u64,
            "seed {seed}: every event should be dropped exactly once as a duplicate"
        );
        verify(&t, &mut sim).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
