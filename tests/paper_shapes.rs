//! Shape tests for the paper's qualitative results: not exact numbers (our
//! corpus is synthetic), but the orderings and trends the paper reports must
//! hold. These are the cheapest always-on guard that the reproduction keeps
//! reproducing; the full-scale versions live in `cts-experiments`.

use cluster_timestamps::prelude::*;
use cts_analysis::metrics;
use cts_analysis::sweep::{sweep, StrategyKind};
use cts_workloads::spmd::Stencil2D;
use cts_workloads::synthetic::{PlantedClusters, UniformRandom};
use cts_workloads::web::WebServer;

fn sizes() -> Vec<usize> {
    (2..=30).collect()
}

/// Cluster timestamps save substantial space on locality-rich computations
/// (the paper: "up to an order-of-magnitude less space").
#[test]
fn clustering_saves_big_on_locality() {
    let t = PlantedClusters {
        procs: 40,
        groups: 8,
        messages: 800,
        p_intra: 0.95,
    }
    .generate(11);
    let r = sweep(&t, StrategyKind::StaticGreedy, &sizes());
    let (_, best) = metrics::best(&r);
    assert!(
        best < 0.15,
        "expected large saving on planted clusters, best ratio {best}"
    );
}

/// On a no-locality computation the saving largely evaporates.
#[test]
fn uniform_random_resists_clustering() {
    let uni = UniformRandom {
        procs: 40,
        messages: 800,
    }
    .generate(11);
    let r = sweep(&uni, StrategyKind::StaticGreedy, &sizes());
    let (_, best_uniform) = metrics::best(&r);
    let planted = PlantedClusters {
        procs: 40,
        groups: 8,
        messages: 800,
        p_intra: 0.95,
    }
    .generate(11);
    let rp = sweep(&planted, StrategyKind::StaticGreedy, &sizes());
    let (_, best_planted) = metrics::best(&rp);
    assert!(
        best_uniform > 2.0 * best_planted,
        "uniform {best_uniform} should be much worse than planted {best_planted}"
    );
}

/// The static curve is smoother than merge-on-1st's (the paper's second
/// claim: insensitivity to the max-cluster-size choice).
#[test]
fn static_curves_are_smoother_than_merge_on_first() {
    let t = WebServer {
        clients: 16,
        workers: 8,
        requests: 400,
        affinity: 0.7,
    }
    .generate(3);
    let st = sweep(&t, StrategyKind::StaticGreedy, &sizes());
    let m1 = sweep(&t, StrategyKind::MergeOnFirst, &sizes());
    let range_static = metrics::good_sizes(&st, 0.20).len();
    let range_m1 = metrics::good_sizes(&m1, 0.20).len();
    assert!(
        range_static >= range_m1,
        "static within-20% range ({range_static}) should be at least merge-1st's ({range_m1})"
    );
}

/// Raising the merge-Nth threshold flattens the curve (Figure 5's observed
/// smoothing) relative to merge-on-1st on hub-dominated traffic.
#[test]
fn merge_nth_threshold_flattens_the_curve() {
    let t = WebServer {
        clients: 16,
        workers: 8,
        requests: 500,
        affinity: 0.6,
    }
    .generate(9);
    let m1 = sweep(&t, StrategyKind::MergeOnFirst, &sizes());
    let n10 = sweep(&t, StrategyKind::MergeOnNth { threshold: 10.0 }, &sizes());
    assert!(
        metrics::max_adjacent_jump(&n10) <= metrics::max_adjacent_jump(&m1) + 1e-9,
        "threshold 10 should not be bumpier than merge-on-1st"
    );
}

/// Deferring merges leaves more cluster receives: the merge-Nth curve should
/// sit at or above merge-on-1st in cluster-receive counts.
#[test]
fn deferred_merging_costs_cluster_receives() {
    let t = Stencil2D {
        rows: 6,
        cols: 6,
        iters: 6,
    }
    .generate(2);
    let m1 = sweep(&t, StrategyKind::MergeOnFirst, &[13]);
    let n10 = sweep(&t, StrategyKind::MergeOnNth { threshold: 10.0 }, &[13]);
    assert!(n10.cluster_receives[0] >= m1.cluster_receives[0]);
}

/// The greedy static algorithm beats fixed contiguous clusters when process
/// numbering does not happen to align with communication (the reason the
/// paper built a real clustering algorithm).
#[test]
fn greedy_beats_contiguous_on_scattered_numbering() {
    let t = PlantedClusters {
        procs: 36,
        groups: 6,
        messages: 700,
        p_intra: 0.95,
    }
    .generate(13);
    // Planted groups are striped mod 6, so contiguous blocks are maximally
    // wrong already; also verify greedy invariance under relabeling.
    let greedy = sweep(&t, StrategyKind::StaticGreedy, &[6]);
    let contiguous = sweep(&t, StrategyKind::Contiguous, &[6]);
    assert!(
        greedy.ratios[0] < contiguous.ratios[0] * 0.7,
        "greedy {} should clearly beat contiguous {}",
        greedy.ratios[0],
        contiguous.ratios[0]
    );
}

/// Never-merge (singleton clusters) is the pessimal clustering: every other
/// strategy does at least as well at any size.
#[test]
fn never_merge_is_pessimal() {
    let t = WebServer {
        clients: 10,
        workers: 5,
        requests: 200,
        affinity: 0.8,
    }
    .generate(21);
    let never = sweep(&t, StrategyKind::NeverMerge, &[13]);
    for strat in [
        StrategyKind::StaticGreedy,
        StrategyKind::MergeOnFirst,
        StrategyKind::MergeOnNth { threshold: 5.0 },
    ] {
        let r = sweep(&t, strat, &[13]);
        assert!(
            r.ratios[0] <= never.ratios[0] + 1e-9,
            "{} ({}) worse than never-merge ({})",
            strat.label(),
            r.ratios[0],
            never.ratios[0]
        );
    }
}
