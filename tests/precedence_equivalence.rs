//! Cross-crate integration: every timestamp scheme in the workspace answers
//! precedence queries identically to the ground-truth oracle, across the
//! mini suite of workloads.

use cluster_timestamps::prelude::*;
use cts_baselines::{DdvStore, DiffStore, GsStore};
use cts_core::cluster::ClusterEngine;
use cts_core::hybrid::hybrid_pipeline;
use cts_core::two_pass::static_pipeline;
use cts_workloads::suite::mini_suite;

/// Sampled event pairs (dense enough to hit all interesting shapes, sparse
/// enough to keep debug-mode runtime sane).
fn pairs(trace: &Trace) -> Vec<(EventId, EventId)> {
    let ids: Vec<EventId> = trace.all_event_ids().collect();
    let step = (ids.len() / 60).max(1);
    let sample: Vec<EventId> = ids.into_iter().step_by(step).collect();
    let mut out = Vec::new();
    for &a in &sample {
        for &b in &sample {
            out.push((a, b));
        }
    }
    out
}

#[test]
fn fm_matches_oracle_on_mini_suite() {
    for entry in mini_suite() {
        let t = &entry.trace;
        let oracle = Oracle::compute(t);
        let fm = FmStore::compute(t);
        for (e, f) in pairs(t) {
            assert_eq!(
                fm.precedes(t, e, f),
                oracle.happened_before(t, e, f),
                "{}: {e} -> {f}",
                entry.name
            );
        }
    }
}

#[test]
fn dynamic_cluster_strategies_match_oracle() {
    for entry in mini_suite() {
        let t = &entry.trace;
        let oracle = Oracle::compute(t);
        let n = t.num_processes();
        let schemes: Vec<(&str, cts_core::cluster::ClusterTimestamps)> = vec![
            ("m1/3", ClusterEngine::run(t, MergeOnFirst::new(3))),
            ("m1/13", ClusterEngine::run(t, MergeOnFirst::new(13))),
            ("mN0/4", ClusterEngine::run(t, MergeOnNth::new(n, 4, 0.0))),
            ("mN5/6", ClusterEngine::run(t, MergeOnNth::new(n, 6, 5.0))),
            ("never", ClusterEngine::run(t, NeverMerge)),
        ];
        for (label, cts) in &schemes {
            for (e, f) in pairs(t) {
                assert_eq!(
                    cts.precedes(t, e, f),
                    oracle.happened_before(t, e, f),
                    "{} {label}: {e} -> {f}",
                    entry.name
                );
            }
        }
    }
}

#[test]
fn static_and_hybrid_match_oracle() {
    for entry in mini_suite() {
        let t = &entry.trace;
        let oracle = Oracle::compute(t);
        let (_, st) = static_pipeline(t, 5);
        let hy = hybrid_pipeline(t, t.num_events() / 3, 5);
        for (e, f) in pairs(t) {
            let want = oracle.happened_before(t, e, f);
            assert_eq!(st.precedes(t, e, f), want, "{} static", entry.name);
            assert_eq!(
                hy.timestamps.precedes(t, e, f),
                want,
                "{} hybrid",
                entry.name
            );
        }
    }
}

#[test]
fn related_work_baselines_match_oracle() {
    for entry in mini_suite() {
        let t = &entry.trace;
        let oracle = Oracle::compute(t);
        let fz = DdvStore::compute(t);
        let sk = DiffStore::compute(t, 8);
        for (e, f) in pairs(t) {
            let want = oracle.happened_before(t, e, f);
            assert_eq!(fz.precedes(t, e, f), want, "{} FZ: {e}->{f}", entry.name);
            assert_eq!(sk.precedes(t, e, f), want, "{} SK: {e}->{f}", entry.name);
        }
    }
}

#[test]
fn gs_matches_oracle_on_synchronous_computations() {
    let mut found = 0;
    for entry in mini_suite() {
        let t = &entry.trace;
        let Ok(gs) = GsStore::build(t) else { continue };
        found += 1;
        let oracle = Oracle::compute(t);
        for (e, f) in pairs(t) {
            assert_eq!(
                gs.precedes(t, e, f),
                oracle.happened_before(t, e, f),
                "{} GS: {e}->{f}",
                entry.name
            );
        }
        // The GS selling point: width ≤ N.
        assert!(gs.width() <= t.num_processes() as usize);
    }
    assert!(found >= 1, "mini suite should contain an all-sync trace");
}
