//! Concurrency: a live monitoring entity has one ingest thread and many
//! query threads. The shared store must expose a consistent prefix at every
//! instant — queries observe a valid partial order no matter when they land.

use cluster_timestamps::prelude::*;
use cts_store::event_store::{EventStore, SharedStore};
use cts_workloads::web::WebServer;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn readers_see_consistent_prefixes_during_ingest() {
    let trace = WebServer {
        clients: 6,
        workers: 3,
        requests: 150,
        affinity: 0.8,
    }
    .generate(17);
    let trace = Arc::new(trace);
    let shared = SharedStore::new(EventStore::new(trace.num_processes()));
    let mut ingest = shared.ingest_handle().unwrap();
    let done = Arc::new(AtomicBool::new(false));
    let ran = Arc::new(AtomicUsize::new(0));

    let mut readers = Vec::new();
    for r in 0..3 {
        let shared = shared.clone();
        let done = Arc::clone(&done);
        let ran = Arc::clone(&ran);
        readers.push(std::thread::spawn(move || {
            let mut checks = 0usize;
            let mut last_len = 0usize;
            while !done.load(Ordering::Acquire) {
                let g = shared.read();
                // Prefix property: the store only grows.
                assert!(g.len() >= last_len, "store shrank");
                last_len = g.len();
                // Every stored receive's source is also stored (consistent
                // prefix, not an arbitrary subset).
                if let Some(rec) = g.records().last() {
                    if let Some(src) = rec.event.kind.receive_source() {
                        let sync = matches!(rec.event.kind, EventKind::Sync { .. });
                        assert!(
                            g.get(src).is_some() || sync,
                            "dangling receive source {src}"
                        );
                    }
                    // The B+-tree agrees with the record list.
                    assert_eq!(g.get(rec.event.id).unwrap().event, rec.event);
                }
                drop(g);
                if checks == 0 {
                    ran.fetch_add(1, Ordering::AcqRel);
                }
                checks += 1;
                if r == 0 {
                    std::thread::yield_now();
                }
            }
            checks
        }));
    }

    for &ev in trace.events() {
        ingest.insert(ev).unwrap();
    }
    // Don't raise `done` until every reader has raced ingest at least once;
    // on a loaded machine the (small) ingest loop can otherwise finish
    // before the reader threads are even scheduled.
    while ran.load(Ordering::Acquire) < 3 {
        std::thread::yield_now();
    }
    done.store(true, Ordering::Release);
    let total_checks: usize = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_checks > 0, "readers never ran");
    assert_eq!(shared.read().len(), trace.num_events());
}

#[test]
fn parallel_engines_agree_with_sequential() {
    // Several threads each run an independent engine over the same trace;
    // results are deterministic and identical (no hidden global state).
    let trace = Arc::new(
        WebServer {
            clients: 5,
            workers: 3,
            requests: 60,
            affinity: 0.7,
        }
        .generate(23),
    );
    let reference = cts_core::ClusterEngine::run(&trace, MergeOnFirst::new(4));
    let ref_crs = reference.num_cluster_receives();
    let ref_partition = reference
        .final_partition()
        .assignment(trace.num_processes());

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let trace = Arc::clone(&trace);
            std::thread::spawn(move || {
                let cts = cts_core::ClusterEngine::run(&trace, MergeOnFirst::new(4));
                (
                    cts.num_cluster_receives(),
                    cts.final_partition().assignment(trace.num_processes()),
                )
            })
        })
        .collect();
    for h in handles {
        let (crs, partition) = h.join().unwrap();
        assert_eq!(crs, ref_crs);
        assert_eq!(partition, ref_partition);
    }
}
