//! Crash-recovery integration tests: the durable daemon must come back
//! from any crash point with a state that is a *valid delivered prefix*,
//! and re-streaming the suite after recovery must leave answers
//! byte-identical to the offline batch engine (delivery-order invariance
//! extends across restarts).
//!
//! Crashes are injected deterministically, not with signals: either the
//! in-process crash-stop (`kill()` — workers exit without the final WAL
//! sync/checkpoint, queued batches discarded) or the `FailpointFs` byte
//! budget (a torn write mid-record, then hard I/O errors — the on-disk
//! state a power cut leaves). Corruption tests then bit-flip and truncate
//! WAL tails directly and assert clean truncate-and-recover, never a panic.

use cts_core::strategy::MergeOnFirst;
use cts_core::ClusterEngine;
use cts_daemon::checkpoint;
use cts_daemon::loadgen::{self, LoadConfig};
use cts_daemon::pipeline::{Computation, ComputationConfig, DurabilityConfig};
use cts_daemon::server::DaemonConfig;
use cts_daemon::shard::StampStrategy;
use cts_daemon::wal;
use cts_model::Trace;
use cts_workloads::suite::mini_suite;
use cts_workloads::{spmd::Stencil1D, Workload};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cts-recovery-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_config(name: &str, n: u32, dir: &Path, budget: Option<u64>) -> ComputationConfig {
    ComputationConfig {
        name: name.to_string(),
        num_processes: n,
        max_cluster_size: 4,
        strategy: StampStrategy::Merge1st {
            max_cluster_size: 4,
        },
        queue_capacity: 8,
        epoch_every: 64,
        shards: 1,
        auto_scale: false,
        balance: false,
        pin_cores: false,
        placement: None,
        durability: Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            // Sync every batch: the crash point is then exactly a batch
            // boundary (or mid-record under a failpoint), deterministically.
            sync_window: Duration::ZERO,
            checkpoint_every: 0,
            wal_byte_budget: budget,
        }),
        query_cache_capacity: 0,
        retain_epochs: 0,
        retain_bytes: 0,
    }
}

/// Assert the computation's published snapshot answers precedence exactly
/// like an offline batch run over `trace` (all pairs).
fn assert_matches_offline(comp: &Computation, trace: &Trace) {
    let snap = comp.snapshot();
    assert_eq!(snap.trace.num_events(), trace.num_events());
    let offline = ClusterEngine::run(trace, MergeOnFirst::new(4));
    for e in trace.all_event_ids() {
        for f in trace.all_event_ids() {
            assert_eq!(
                snap.cts.precedes(&snap.trace, e, f),
                offline.precedes(trace, e, f),
                "{e} -> {f} diverged after recovery"
            );
        }
    }
}

#[test]
fn crash_mid_suite_recovery_has_zero_mismatches() {
    // The headline guarantee, over the whole mini suite through real TCP:
    // partial stream → crash-stop → restart → recover → re-stream full
    // suite → the standard differential check reports zero mismatches.
    // checkpoint_every is tiny so checkpoints *and* WAL rotation happen
    // mid-run, and recovery stitches checkpoint + WAL tail.
    let dir = tmpdir("crash-mid-suite");
    let suite = mini_suite();
    let total: u64 = suite.iter().map(|e| e.trace.num_events() as u64).sum();
    let cfg = LoadConfig {
        connections: 4,
        seed: 7,
        precedence_queries: 40,
        gc_probes: 2,
        ..LoadConfig::default()
    };
    let daemon_cfg = DaemonConfig {
        data_dir: Some(dir.clone()),
        sync_window: Duration::ZERO,
        checkpoint_every: 64,
        ..DaemonConfig::default()
    };
    let report = loadgen::run_crash_replay(&suite, &cfg, daemon_cfg, total / 2, true)
        .expect("crash replay")
        .expect("restart requested");
    assert_eq!(report.computations, suite.len());
    assert_eq!(report.total_events, total);
    assert_eq!(
        report.mismatches, 0,
        "recovered daemon diverged from the offline engine"
    );
}

#[test]
fn sharded_crash_mid_suite_recovery_has_zero_mismatches() {
    // The same headline guarantee with four ingest shards per computation:
    // partial stream → crash-stop → restart (recovering the union of the
    // per-shard WALs) → re-stream → zero differential mismatches.
    let dir = tmpdir("sharded-crash-mid-suite");
    let suite = mini_suite();
    let total: u64 = suite.iter().map(|e| e.trace.num_events() as u64).sum();
    let cfg = LoadConfig {
        connections: 4,
        seed: 11,
        precedence_queries: 40,
        gc_probes: 2,
        ..LoadConfig::default()
    };
    let daemon_cfg = DaemonConfig {
        data_dir: Some(dir.clone()),
        sync_window: Duration::ZERO,
        checkpoint_every: 64,
        shards: 4,
        ..DaemonConfig::default()
    };
    let report = loadgen::run_crash_replay(&suite, &cfg, daemon_cfg, total / 2, true)
        .expect("crash replay")
        .expect("restart requested");
    assert_eq!(report.computations, suite.len());
    assert_eq!(report.total_events, total);
    assert_eq!(
        report.mismatches, 0,
        "recovered sharded daemon diverged from the offline engine"
    );
}

#[test]
fn sharded_torn_shard_tail_with_one_shard_ahead() {
    // Crash-stop a 4-shard durable computation, then tear ONE shard's WAL
    // tail mid-record: that shard restarts behind its peers, so some
    // surviving events on other shards depend on events that no longer
    // exist anywhere on disk. Those orphans were never acknowledged (a
    // flush syncs every shard before acking), so recovery parks them,
    // replays the rest, and the client's re-stream restores exactness.
    let dir = tmpdir("sharded-torn-tail");
    let trace = Stencil1D { procs: 8, iters: 5 }.generate(19);
    let n = trace.num_processes();
    let mut cfg = durable_config("sharded-torn", n, &dir, None);
    cfg.shards = 4;

    let (comp, report) = Computation::spawn_durable(cfg.clone()).expect("spawn");
    assert_eq!(comp.num_shards(), 4);
    assert_eq!(report.total_events(), 0);
    for chunk in trace.events().chunks(17) {
        comp.enqueue_events(chunk.to_vec()).unwrap();
    }
    comp.flush(trace.num_events() as u64, Duration::from_secs(30))
        .expect("flush");
    comp.kill();

    // Every shard has its own segment directory; chop one mid-record.
    let shard_dirs: Vec<PathBuf> = (0..4).map(|s| dir.join(format!("shard-{s:02}"))).collect();
    let victim_segs = wal::list_segments(&shard_dirs[1]).unwrap();
    let (_, victim) = victim_segs.first().expect("shard 1 wrote a segment");
    let len = std::fs::metadata(victim).unwrap().len();
    assert!(len > 40, "victim segment too small to tear meaningfully");
    std::fs::File::options()
        .write(true)
        .open(victim)
        .unwrap()
        .set_len(len - 9)
        .unwrap();

    let (comp, report) = Computation::spawn_durable(cfg).expect("respawn");
    assert!(report.torn_tail.is_some(), "tear not reported");
    assert!(report.torn_bytes_truncated > 0);
    assert!(
        report.total_events() < trace.num_events() as u64,
        "the torn shard must have lost events"
    );
    assert!(report.total_events() > 0, "intact shards must replay");

    comp.enqueue_events(trace.events().to_vec()).unwrap();
    comp.flush(trace.num_events() as u64, Duration::from_secs(30))
        .expect("flush after recovery");
    assert_matches_offline(&comp, &trace);
    comp.shutdown();
}

#[test]
fn sharded_graceful_shutdown_restarts_from_global_checkpoint() {
    // Graceful sharded shutdown writes a final *global* checkpoint of the
    // assembled cut; a restart must serve exact answers with no re-stream.
    let dir = tmpdir("sharded-graceful");
    let trace = Stencil1D { procs: 8, iters: 4 }.generate(37);
    let n = trace.num_processes();
    let mut cfg = durable_config("sharded-graceful", n, &dir, None);
    cfg.shards = 4;
    cfg.durability.as_mut().unwrap().checkpoint_every = 50;

    let (comp, _) = Computation::spawn_durable(cfg.clone()).expect("spawn");
    comp.enqueue_events(trace.events().to_vec()).unwrap();
    comp.flush(trace.num_events() as u64, Duration::from_secs(30))
        .expect("flush");
    comp.shutdown();

    let ckpt = checkpoint::load_latest_checkpoint(&dir)
        .unwrap()
        .expect("final global checkpoint written");
    assert_eq!(ckpt.delivered, trace.num_events() as u64);

    let (comp, report) = Computation::spawn_durable(cfg).expect("respawn");
    assert_eq!(report.total_events(), trace.num_events() as u64);
    assert_matches_offline(&comp, &trace);
    comp.shutdown();
}

#[test]
fn single_worker_layout_recovers_under_sharded_restart() {
    // Upgrade path: a computation runs durably in single-worker mode
    // (top-level WAL segments), crashes, and restarts with --shards 4. The
    // sharded bootstrap must recover the legacy layout, re-shard it, and
    // converge to exactness after a re-stream.
    let dir = tmpdir("legacy-to-sharded");
    let trace = Stencil1D { procs: 8, iters: 4 }.generate(43);
    let n = trace.num_processes();

    let (comp, _) =
        Computation::spawn_durable(durable_config("upgrade", n, &dir, None)).expect("spawn");
    assert_eq!(comp.num_shards(), 1);
    for chunk in trace.events().chunks(13) {
        comp.enqueue_events(chunk.to_vec()).unwrap();
    }
    comp.flush(trace.num_events() as u64, Duration::from_secs(30))
        .expect("flush");
    comp.kill();

    let mut cfg = durable_config("upgrade", n, &dir, None);
    cfg.shards = 4;
    let (comp, report) = Computation::spawn_durable(cfg).expect("respawn sharded");
    assert_eq!(comp.num_shards(), 4);
    assert_eq!(report.total_events(), trace.num_events() as u64);
    // Legacy top-level segments are retired once the global checkpoint
    // covers them (re-sharding rewrites durability in the new layout).
    assert!(wal::list_segments(&dir).unwrap().is_empty());
    assert_matches_offline(&comp, &trace);
    comp.shutdown();
}

#[test]
fn crash_during_autoscale_relayout_recovers_exactly() {
    // Crash-stop an autoscaling durable computation the moment a live
    // split re-lays-out the planted hot trace: the crash lands with a
    // freshly-activated slot whose WAL dir only just started filling, and
    // with migrated clusters whose events are spread across the source and
    // destination shard WALs. Recovery must union every shard dir
    // (including slots the autoscaler activated mid-stream), replay a
    // valid delivered prefix, and converge to exactness after a re-stream.
    let dir = tmpdir("autoscale-crash");
    let trace = cts_daemon::place::hot_group_trace(6, 4, 8, 24);
    let n = trace.num_processes();
    let mut cfg = durable_config("autoscale-crash", n, &dir, None);
    cfg.shards = 2;
    cfg.auto_scale = true;

    let (comp, _) = Computation::spawn_durable(cfg).expect("spawn");
    assert_eq!(
        comp.num_shards(),
        2,
        "autoscale starts at the requested count"
    );
    // Small chunks: the placement engine paces itself in shard *messages*,
    // so the plant must arrive as enough messages to warm the occupancy
    // EWMAs and clear the decision cooldown while streaming.
    let mut killed_mid_relayout = false;
    for chunk in trace.events().chunks(16) {
        comp.enqueue_events(chunk.to_vec()).unwrap();
        if comp.num_shards() > 2 {
            // A split just happened; crash right on top of the re-layout.
            comp.kill();
            killed_mid_relayout = true;
            break;
        }
    }
    if !killed_mid_relayout {
        // Slow path (single-core CI scheduling): finish the stream — the
        // hot plant must force at least one split by quiescence — then
        // crash-stop without the final sync/checkpoint.
        comp.flush(trace.num_events() as u64, Duration::from_secs(30))
            .expect("flush");
        assert!(
            comp.num_shards() > 2,
            "the planted hot shard never split (shards={})",
            comp.num_shards()
        );
        comp.kill();
    }

    let mut cfg = durable_config("autoscale-crash", n, &dir, None);
    cfg.shards = 2;
    cfg.auto_scale = true;
    let (comp, report) = Computation::spawn_durable(cfg).expect("respawn");
    assert!(
        report.total_events() <= trace.num_events() as u64,
        "recovery replayed more events than exist"
    );
    // Differential re-verify: re-stream the full trace (acknowledged
    // events dedup) and compare every precedence pair against the offline
    // engine.
    comp.enqueue_events(trace.events().to_vec()).unwrap();
    comp.flush(trace.num_events() as u64, Duration::from_secs(60))
        .expect("flush after recovery");
    assert_matches_offline(&comp, &trace);
    comp.shutdown();
}

#[test]
fn failpoint_torn_write_truncates_and_recovers() {
    // A simulated power cut mid-`write(2)`: the WAL's byte budget tears a
    // record. Recovery must cut the torn tail, replay the surviving valid
    // prefix, and re-streaming must converge to exactness.
    let dir = tmpdir("failpoint-torn");
    let trace = Stencil1D { procs: 6, iters: 5 }.generate(23);
    let n = trace.num_processes();

    // Enough budget for the header and a few records, then the crash.
    // (Calibrated to the delta-encoded v2 record size: the whole trace
    // fits in well under 900 bytes now.)
    let (comp, report) =
        Computation::spawn_durable(durable_config("torn", n, &dir, Some(300))).expect("spawn");
    assert_eq!(report.total_events(), 0);
    for chunk in trace.events().chunks(17) {
        comp.enqueue_events(chunk.to_vec()).unwrap();
    }
    comp.flush(trace.num_events() as u64, Duration::from_secs(30))
        .expect("flush");
    comp.kill();

    // The segment on disk must actually be torn (the budget tripped).
    let (_, seg) = wal::list_segments(&dir)
        .unwrap()
        .into_iter()
        .next()
        .unwrap();
    let scan = wal::scan_segment(&seg).unwrap();
    assert!(scan.torn.is_some(), "failpoint did not tear the WAL");
    let survived = scan.num_events();
    assert!(survived > 0 && survived < trace.num_events());

    // Restart without the failpoint: a strict prefix is recovered...
    let (comp, report) =
        Computation::spawn_durable(durable_config("torn", n, &dir, None)).expect("respawn");
    assert!(report.torn_tail.is_some(), "tear not reported");
    assert!(report.torn_bytes_truncated > 0);
    assert_eq!(report.total_events(), survived as u64);

    // ...and the client re-transmitting everything (dedup absorbs the
    // overlap) restores exactness.
    comp.enqueue_events(trace.events().to_vec()).unwrap();
    comp.flush(trace.num_events() as u64, Duration::from_secs(30))
        .expect("flush after recovery");
    assert_matches_offline(&comp, &trace);
    comp.shutdown();
}

#[test]
fn bit_flipped_wal_record_is_cut_not_replayed() {
    let dir = tmpdir("bit-flip");
    let trace = Stencil1D { procs: 5, iters: 4 }.generate(41);
    let n = trace.num_processes();

    let (comp, _) =
        Computation::spawn_durable(durable_config("flip", n, &dir, None)).expect("spawn");
    for chunk in trace.events().chunks(13) {
        comp.enqueue_events(chunk.to_vec()).unwrap();
    }
    comp.flush(trace.num_events() as u64, Duration::from_secs(30))
        .expect("flush");
    comp.shutdown();

    // Flip one bit late in the segment: every record from the damaged one
    // on must be discarded (CRC), but the prefix before it must survive.
    let (_, seg) = wal::list_segments(&dir)
        .unwrap()
        .into_iter()
        .next()
        .unwrap();
    let mut bytes = std::fs::read(&seg).unwrap();
    let pos = bytes.len() - bytes.len() / 4;
    bytes[pos] ^= 0x10;
    std::fs::write(&seg, &bytes).unwrap();

    let (comp, report) =
        Computation::spawn_durable(durable_config("flip", n, &dir, None)).expect("respawn");
    assert!(report.torn_tail.is_some(), "corruption not detected");
    assert!(report.total_events() < trace.num_events() as u64);
    // The file was physically truncated to the valid prefix.
    let scan = wal::scan_segment(&seg).unwrap();
    assert!(scan.torn.is_none(), "truncate left a bad tail behind");

    comp.enqueue_events(trace.events().to_vec()).unwrap();
    comp.flush(trace.num_events() as u64, Duration::from_secs(30))
        .expect("flush after recovery");
    assert_matches_offline(&comp, &trace);
    comp.shutdown();
}

#[test]
fn truncated_wal_tail_recovers_the_prefix() {
    let dir = tmpdir("short-tail");
    let trace = Stencil1D { procs: 4, iters: 4 }.generate(9);
    let n = trace.num_processes();

    let (comp, _) =
        Computation::spawn_durable(durable_config("short", n, &dir, None)).expect("spawn");
    for chunk in trace.events().chunks(11) {
        comp.enqueue_events(chunk.to_vec()).unwrap();
    }
    comp.flush(trace.num_events() as u64, Duration::from_secs(30))
        .expect("flush");
    comp.shutdown();

    // Chop mid-record (a crashed kernel never finished the tail write).
    let (_, seg) = wal::list_segments(&dir)
        .unwrap()
        .into_iter()
        .next()
        .unwrap();
    let len = std::fs::metadata(&seg).unwrap().len();
    std::fs::File::options()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(len - 7)
        .unwrap();

    let (comp, report) =
        Computation::spawn_durable(durable_config("short", n, &dir, None)).expect("respawn");
    assert!(report.torn_tail.is_some());
    assert!(report.total_events() > 0);
    comp.enqueue_events(trace.events().to_vec()).unwrap();
    comp.flush(trace.num_events() as u64, Duration::from_secs(30))
        .expect("flush after recovery");
    assert_matches_offline(&comp, &trace);
    comp.shutdown();
}

#[test]
fn empty_and_header_only_wals_recover_to_empty() {
    let dir = tmpdir("empty-wal");
    let trace = Stencil1D { procs: 3, iters: 2 }.generate(5);
    let n = trace.num_processes();

    // First start: directory is fresh — nothing to recover.
    let (comp, report) =
        Computation::spawn_durable(durable_config("empty", n, &dir, None)).expect("spawn");
    assert_eq!(report.total_events(), 0);
    comp.kill(); // crash before anything was delivered

    // Second start: a header-only segment exists now; still nothing.
    let (comp, report) =
        Computation::spawn_durable(durable_config("empty", n, &dir, None)).expect("respawn");
    assert_eq!(report.total_events(), 0);
    assert!(report.torn_tail.is_none());
    comp.enqueue_events(trace.events().to_vec()).unwrap();
    comp.flush(trace.num_events() as u64, Duration::from_secs(30))
        .expect("flush");
    assert_matches_offline(&comp, &trace);
    comp.shutdown();
}

#[test]
fn graceful_shutdown_then_restart_needs_no_restream() {
    // Graceful shutdown writes a synced WAL and a final checkpoint; a
    // restart must serve exact answers with no client help at all.
    let dir = tmpdir("graceful");
    let trace = Stencil1D { procs: 6, iters: 4 }.generate(31);
    let n = trace.num_processes();
    let mut cfg = durable_config("graceful", n, &dir, None);
    cfg.durability.as_mut().unwrap().checkpoint_every = 50;

    let (comp, _) = Computation::spawn_durable(cfg.clone()).expect("spawn");
    comp.enqueue_events(trace.events().to_vec()).unwrap();
    comp.flush(trace.num_events() as u64, Duration::from_secs(30))
        .expect("flush");
    comp.shutdown();

    // The final checkpoint covers everything — restart replays it alone.
    let ckpt = checkpoint::load_latest_checkpoint(&dir)
        .unwrap()
        .expect("final checkpoint written");
    assert_eq!(ckpt.delivered, trace.num_events() as u64);

    let (comp, report) = Computation::spawn_durable(cfg).expect("respawn");
    assert_eq!(report.total_events(), trace.num_events() as u64);
    assert_eq!(report.checkpoint_events, trace.num_events() as u64);
    assert_matches_offline(&comp, &trace);
    comp.shutdown();
}
