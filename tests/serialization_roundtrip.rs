//! Serialization across the whole workload zoo: every mini-suite trace
//! survives a text round trip with its events, statistics, and causal order
//! intact — the property the monitoring entity's wire format needs.

use cluster_timestamps::prelude::*;
use cts_model::stats::TraceStats;
use cts_model::textio::{parse_trace, write_trace};
use cts_workloads::suite::mini_suite;

#[test]
fn every_mini_suite_trace_roundtrips() {
    for entry in mini_suite() {
        let t = &entry.trace;
        let text = write_trace(t);
        let back =
            parse_trace(&text).unwrap_or_else(|e| panic!("{}: parse failed: {e}", entry.name));
        assert_eq!(back.events(), t.events(), "{}", entry.name);
        assert_eq!(back.num_processes(), t.num_processes());
        assert_eq!(
            TraceStats::compute(&back),
            TraceStats::compute(t),
            "{}",
            entry.name
        );
    }
}

#[test]
fn roundtrip_preserves_precedence() {
    for entry in mini_suite().into_iter().take(4) {
        let t = &entry.trace;
        let back = parse_trace(&write_trace(t)).unwrap();
        let fm_a = FmStore::compute(t);
        let fm_b = FmStore::compute(&back);
        let ids: Vec<EventId> = t.all_event_ids().step_by(5).collect();
        for &e in &ids {
            for &f in &ids {
                assert_eq!(
                    fm_a.precedes(t, e, f),
                    fm_b.precedes(&back, e, f),
                    "{}: {e} -> {f}",
                    entry.name
                );
            }
        }
    }
}

#[test]
fn text_format_is_line_per_communication() {
    for entry in mini_suite().into_iter().take(4) {
        let t = &entry.trace;
        let text = write_trace(t);
        let event_lines = text
            .lines()
            .filter(|l| !l.starts_with("trace") && !l.starts_with("procs"))
            .count();
        // One line per event, except sync pairs which collapse to one line.
        assert_eq!(
            event_lines,
            t.num_events() - t.num_sync_pairs(),
            "{}",
            entry.name
        );
    }
}
