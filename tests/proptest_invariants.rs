//! Property-based tests: arbitrary valid computations are generated op by
//! op, and every invariant of the timestamp structures must hold.

use cluster_timestamps::prelude::*;
use cts_core::cluster::{ClusterStamp, ClusterTimestamps};
use cts_core::clustering::greedy_pairwise;
use cts_core::two_pass::static_pipeline;
use cts_model::comm::CommMatrix;
use proptest::prelude::*;

/// A generator op; receives refer to the k-th pending send at apply time.
#[derive(Clone, Debug)]
enum Op {
    Internal(u32),
    Send(u32, u32),
    Receive(u32),
    Sync(u32, u32),
}

fn apply_ops(n: u32, ops: &[Op]) -> Trace {
    let mut b = TraceBuilder::new(n);
    let mut pending = Vec::new();
    for op in ops {
        match *op {
            Op::Internal(p) => {
                b.internal(ProcessId(p % n)).unwrap();
            }
            Op::Send(p, q) => {
                let (p, q) = (p % n, q % n);
                if p != q {
                    pending.push(b.send(ProcessId(p), ProcessId(q)).unwrap());
                }
            }
            Op::Receive(k) => {
                if !pending.is_empty() {
                    let tok = pending.remove(k as usize % pending.len());
                    // Destination is encoded in the token; find it by retry.
                    for dest in 0..n {
                        if b.receive(ProcessId(dest), tok).is_ok() {
                            break;
                        }
                    }
                }
            }
            Op::Sync(p, q) => {
                let (p, q) = (p % n, q % n);
                if p != q {
                    b.sync(ProcessId(p), ProcessId(q)).unwrap();
                }
            }
        }
    }
    b.finish("proptest")
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..8).prop_map(Op::Internal),
        (0u32..8, 0u32..8).prop_map(|(p, q)| Op::Send(p, q)),
        (0u32..64).prop_map(Op::Receive),
        (0u32..8, 0u32..8).prop_map(|(p, q)| Op::Sync(p, q)),
    ]
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    (2u32..6, proptest::collection::vec(op_strategy(), 1..40))
        .prop_map(|(n, ops)| apply_ops(n, &ops))
}

fn check_exact_wrap(
    t: &Trace,
    cts: &ClusterTimestamps,
) -> proptest::test_runner::TestCaseResult {
    let oracle = Oracle::compute(t);
    for e in t.all_event_ids() {
        for f in t.all_event_ids() {
            prop_assert_eq!(
                cts.precedes(t, e, f),
                oracle.happened_before(t, e, f),
                "{} -> {}",
                e,
                f
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fm_equals_oracle(t in trace_strategy()) {
        let oracle = Oracle::compute(&t);
        let fm = FmStore::compute(&t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                prop_assert_eq!(fm.precedes(&t, e, f), oracle.happened_before(&t, e, f));
            }
        }
    }

    #[test]
    fn merge_on_first_equals_oracle(t in trace_strategy(), max_cs in 1usize..6) {
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(max_cs));
        check_exact_wrap(&t, &cts)?;
    }

    #[test]
    fn merge_on_nth_equals_oracle(
        t in trace_strategy(),
        max_cs in 1usize..6,
        threshold in 0.0f64..4.0,
    ) {
        let cts = ClusterEngine::run(&t, MergeOnNth::new(t.num_processes(), max_cs, threshold));
        check_exact_wrap(&t, &cts)?;
    }

    #[test]
    fn static_greedy_equals_oracle(t in trace_strategy(), max_cs in 1usize..6) {
        let (_, cts) = static_pipeline(&t, max_cs);
        check_exact_wrap(&t, &cts)?;
    }

    #[test]
    fn clusters_partition_and_respect_max_size(t in trace_strategy(), max_cs in 1usize..6) {
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(max_cs));
        let part = cts.final_partition();
        part.validate(t.num_processes()).expect("partition");
        prop_assert!(part.max_cluster_size() <= max_cs.max(1));
    }

    #[test]
    fn greedy_clustering_respects_max_size(t in trace_strategy(), max_cs in 1usize..8) {
        let m = CommMatrix::from_trace(&t);
        let c = greedy_pairwise(&m, max_cs);
        c.validate(t.num_processes()).expect("partition");
        prop_assert!(c.max_cluster_size() <= max_cs.max(1));
        // No two clusters that communicate could still merge within the cap.
        let cl = c.clusters();
        for i in 0..cl.len() {
            for j in (i + 1)..cl.len() {
                if cl[i].len() + cl[j].len() <= max_cs {
                    prop_assert_eq!(
                        m.between_groups(&cl[i], &cl[j]),
                        0,
                        "mergeable communicating pair left behind"
                    );
                }
            }
        }
    }

    #[test]
    fn projected_stamps_are_fm_projections(t in trace_strategy(), max_cs in 1usize..6) {
        let fm = FmStore::compute(&t);
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(max_cs));
        for pos in 0..t.num_events() {
            match cts.stamp_at(pos) {
                ClusterStamp::Projected { version, clock } => {
                    let members = cts.sets().members(*version);
                    for (i, &q) in members.iter().enumerate() {
                        prop_assert_eq!(clock[i], fm.stamp_at(pos)[q.idx()]);
                    }
                }
                ClusterStamp::Full { clock } => {
                    prop_assert_eq!(clock.as_slice(), fm.stamp_at(pos));
                }
            }
        }
    }

    #[test]
    fn ratio_bounded_by_one_under_fixed_encoding(t in trace_strategy(), max_cs in 1usize..6) {
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(max_cs));
        let enc = Encoding::paper_default(t.num_processes(), max_cs);
        let r = SpaceReport::measure(&cts, enc);
        prop_assert!(r.ratio <= 1.0 + 1e-12, "ratio {} > 1", r.ratio);
        prop_assert!(r.ratio >= 0.0);
    }

    #[test]
    fn merge_nth_zero_threshold_equals_merge_first(t in trace_strategy(), max_cs in 1usize..6) {
        let a = ClusterEngine::run(&t, MergeOnFirst::new(max_cs));
        let b = ClusterEngine::run(&t, MergeOnNth::new(t.num_processes(), max_cs, 0.0));
        prop_assert_eq!(a.num_cluster_receives(), b.num_cluster_receives());
        prop_assert_eq!(a.num_merges(), b.num_merges());
        prop_assert_eq!(
            a.final_partition().assignment(t.num_processes()),
            b.final_partition().assignment(t.num_processes())
        );
    }

    #[test]
    fn migrating_engine_equals_oracle(
        t in trace_strategy(),
        max_cs in 1usize..6,
        threshold in 0.0f64..2.0,
        migrate_after in 1u32..4,
    ) {
        use cts_core::cluster::MigratingEngine;
        let mts = MigratingEngine::run(&t, max_cs, threshold, migrate_after);
        let oracle = Oracle::compute(&t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                prop_assert_eq!(
                    mts.precedes(&t, e, f),
                    oracle.happened_before(&t, e, f),
                    "{} -> {}", e, f
                );
            }
        }
    }

    #[test]
    fn relinearization_preserves_fm_stamps(t in trace_strategy(), seed in 0u64..1000) {
        use cts_model::linearize::{is_valid_delivery_order, relinearize};
        let r = relinearize(&t, seed);
        prop_assert!(is_valid_delivery_order(r.num_processes(), r.events()));
        let fm_a = FmStore::compute(&t);
        let fm_b = FmStore::compute(&r);
        for id in t.all_event_ids() {
            prop_assert_eq!(fm_a.stamp(&t, id), fm_b.stamp(&r, id));
        }
    }

    #[test]
    fn textio_roundtrip(t in trace_strategy()) {
        let text = cts_model::textio::write_trace(&t);
        let back = cts_model::textio::parse_trace(&text).expect("roundtrip");
        prop_assert_eq!(back.events(), t.events());
        prop_assert_eq!(back.num_processes(), t.num_processes());
    }

    #[test]
    fn oracle_is_a_strict_partial_order_modulo_sync(t in trace_strategy()) {
        // Irreflexive always; antisymmetric except for sync halves (which are
        // causally identified by convention).
        let oracle = Oracle::compute(&t);
        let nodes = cts_model::oracle::NodeMap::build(&t);
        for e in t.all_event_ids() {
            prop_assert!(!oracle.happened_before(&t, e, e));
            for f in t.all_event_ids() {
                if oracle.happened_before(&t, e, f) && oracle.happened_before(&t, f, e) {
                    prop_assert_eq!(
                        nodes.node(&t, e),
                        nodes.node(&t, f),
                        "mutual order only for sync halves"
                    );
                }
            }
        }
    }
}
