//! Property-based tests: arbitrary valid computations are generated op by
//! op, and every invariant of the timestamp structures must hold.
//!
//! The harness is `cts_util::check::run_cases`: each property runs 64 cases,
//! each case drawing a fresh trace (and parameters) from a per-case
//! `ChaCha8Rng`. Failures report the property name, case number, and base
//! seed, so any counterexample replays exactly by rerunning the test.

use cluster_timestamps::prelude::*;
use cts_core::cluster::{ClusterStamp, ClusterTimestamps};
use cts_core::clustering::greedy_pairwise;
use cts_core::two_pass::static_pipeline;
use cts_model::comm::CommMatrix;
use cts_util::check::run_cases;
use cts_util::prng::{ChaCha8Rng, Rng};

const CASES: u64 = 64;

/// A generator op; receives refer to the k-th pending send at apply time.
#[derive(Clone, Debug)]
enum Op {
    Internal(u32),
    Send(u32, u32),
    Receive(u32),
    Sync(u32, u32),
}

fn random_op(rng: &mut ChaCha8Rng) -> Op {
    match rng.gen_range(0u32..4) {
        0 => Op::Internal(rng.gen_range(0u32..8)),
        1 => Op::Send(rng.gen_range(0u32..8), rng.gen_range(0u32..8)),
        2 => Op::Receive(rng.gen_range(0u32..64)),
        _ => Op::Sync(rng.gen_range(0u32..8), rng.gen_range(0u32..8)),
    }
}

fn apply_ops(n: u32, ops: &[Op]) -> Trace {
    let mut b = TraceBuilder::new(n);
    let mut pending = Vec::new();
    for op in ops {
        match *op {
            Op::Internal(p) => {
                b.internal(ProcessId(p % n)).unwrap();
            }
            Op::Send(p, q) => {
                let (p, q) = (p % n, q % n);
                if p != q {
                    pending.push(b.send(ProcessId(p), ProcessId(q)).unwrap());
                }
            }
            Op::Receive(k) => {
                if !pending.is_empty() {
                    let tok = pending.remove(k as usize % pending.len());
                    // Destination is encoded in the token; find it by retry.
                    for dest in 0..n {
                        if b.receive(ProcessId(dest), tok).is_ok() {
                            break;
                        }
                    }
                }
            }
            Op::Sync(p, q) => {
                let (p, q) = (p % n, q % n);
                if p != q {
                    b.sync(ProcessId(p), ProcessId(q)).unwrap();
                }
            }
        }
    }
    b.finish("proptest")
}

/// A random valid computation: 2–5 processes, 1–39 generator ops.
fn random_trace(rng: &mut ChaCha8Rng) -> Trace {
    let n = rng.gen_range(2u32..6);
    let len = rng.gen_range(1usize..40);
    let ops: Vec<Op> = (0..len).map(|_| random_op(rng)).collect();
    apply_ops(n, &ops)
}

fn check_exact(t: &Trace, cts: &ClusterTimestamps) {
    let oracle = Oracle::compute(t);
    for e in t.all_event_ids() {
        for f in t.all_event_ids() {
            assert_eq!(
                cts.precedes(t, e, f),
                oracle.happened_before(t, e, f),
                "{e} -> {f}"
            );
        }
    }
}

#[test]
fn fm_equals_oracle() {
    run_cases("fm_equals_oracle", CASES, 0x01, |rng| {
        let t = random_trace(rng);
        let oracle = Oracle::compute(&t);
        let fm = FmStore::compute(&t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(
                    fm.precedes(&t, e, f),
                    oracle.happened_before(&t, e, f),
                    "{e} -> {f}"
                );
            }
        }
    });
}

#[test]
fn merge_on_first_equals_oracle() {
    run_cases("merge_on_first_equals_oracle", CASES, 0x02, |rng| {
        let t = random_trace(rng);
        let max_cs = rng.gen_range(1usize..6);
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(max_cs));
        check_exact(&t, &cts);
    });
}

#[test]
fn merge_on_nth_equals_oracle() {
    run_cases("merge_on_nth_equals_oracle", CASES, 0x03, |rng| {
        let t = random_trace(rng);
        let max_cs = rng.gen_range(1usize..6);
        let threshold = rng.gen_f64() * 4.0;
        let cts = ClusterEngine::run(&t, MergeOnNth::new(t.num_processes(), max_cs, threshold));
        check_exact(&t, &cts);
    });
}

#[test]
fn static_greedy_equals_oracle() {
    run_cases("static_greedy_equals_oracle", CASES, 0x04, |rng| {
        let t = random_trace(rng);
        let max_cs = rng.gen_range(1usize..6);
        let (_, cts) = static_pipeline(&t, max_cs);
        check_exact(&t, &cts);
    });
}

#[test]
fn clusters_partition_and_respect_max_size() {
    run_cases(
        "clusters_partition_and_respect_max_size",
        CASES,
        0x05,
        |rng| {
            let t = random_trace(rng);
            let max_cs = rng.gen_range(1usize..6);
            let cts = ClusterEngine::run(&t, MergeOnFirst::new(max_cs));
            let part = cts.final_partition();
            part.validate(t.num_processes()).expect("partition");
            assert!(part.max_cluster_size() <= max_cs.max(1));
        },
    );
}

#[test]
fn greedy_clustering_respects_max_size() {
    run_cases("greedy_clustering_respects_max_size", CASES, 0x06, |rng| {
        let t = random_trace(rng);
        let max_cs = rng.gen_range(1usize..8);
        let m = CommMatrix::from_trace(&t);
        let c = greedy_pairwise(&m, max_cs);
        c.validate(t.num_processes()).expect("partition");
        assert!(c.max_cluster_size() <= max_cs.max(1));
        // No two clusters that communicate could still merge within the cap.
        let cl = c.clusters();
        for i in 0..cl.len() {
            for j in (i + 1)..cl.len() {
                if cl[i].len() + cl[j].len() <= max_cs {
                    assert_eq!(
                        m.between_groups(&cl[i], &cl[j]),
                        0,
                        "mergeable communicating pair left behind"
                    );
                }
            }
        }
    });
}

#[test]
fn projected_stamps_are_fm_projections() {
    run_cases("projected_stamps_are_fm_projections", CASES, 0x07, |rng| {
        let t = random_trace(rng);
        let max_cs = rng.gen_range(1usize..6);
        let fm = FmStore::compute(&t);
        let cts = ClusterEngine::run(&t, MergeOnFirst::new(max_cs));
        for pos in 0..t.num_events() {
            match cts.stamp_at(pos) {
                ClusterStamp::Projected { version, clock } => {
                    let members = cts.sets().members(*version);
                    for (i, &q) in members.iter().enumerate() {
                        assert_eq!(clock[i], fm.stamp_at(pos)[q.idx()]);
                    }
                }
                ClusterStamp::Full { clock } => {
                    assert_eq!(clock.as_slice(), fm.stamp_at(pos));
                }
            }
        }
    });
}

#[test]
fn ratio_bounded_by_one_under_fixed_encoding() {
    run_cases(
        "ratio_bounded_by_one_under_fixed_encoding",
        CASES,
        0x08,
        |rng| {
            let t = random_trace(rng);
            let max_cs = rng.gen_range(1usize..6);
            let cts = ClusterEngine::run(&t, MergeOnFirst::new(max_cs));
            let enc = Encoding::paper_default(t.num_processes(), max_cs);
            let r = SpaceReport::measure(&cts, enc);
            assert!(r.ratio <= 1.0 + 1e-12, "ratio {} > 1", r.ratio);
            assert!(r.ratio >= 0.0);
        },
    );
}

#[test]
fn merge_nth_zero_threshold_equals_merge_first() {
    run_cases(
        "merge_nth_zero_threshold_equals_merge_first",
        CASES,
        0x09,
        |rng| {
            let t = random_trace(rng);
            let max_cs = rng.gen_range(1usize..6);
            let a = ClusterEngine::run(&t, MergeOnFirst::new(max_cs));
            let b = ClusterEngine::run(&t, MergeOnNth::new(t.num_processes(), max_cs, 0.0));
            assert_eq!(a.num_cluster_receives(), b.num_cluster_receives());
            assert_eq!(a.num_merges(), b.num_merges());
            assert_eq!(
                a.final_partition().assignment(t.num_processes()),
                b.final_partition().assignment(t.num_processes())
            );
        },
    );
}

#[test]
fn migrating_engine_equals_oracle() {
    run_cases("migrating_engine_equals_oracle", CASES, 0x0a, |rng| {
        use cts_core::cluster::MigratingEngine;
        let t = random_trace(rng);
        let max_cs = rng.gen_range(1usize..6);
        let threshold = rng.gen_f64() * 2.0;
        let migrate_after = rng.gen_range(1u32..4);
        let mts = MigratingEngine::run(&t, max_cs, threshold, migrate_after);
        let oracle = Oracle::compute(&t);
        for e in t.all_event_ids() {
            for f in t.all_event_ids() {
                assert_eq!(
                    mts.precedes(&t, e, f),
                    oracle.happened_before(&t, e, f),
                    "{e} -> {f}"
                );
            }
        }
    });
}

#[test]
fn relinearization_preserves_fm_stamps() {
    run_cases("relinearization_preserves_fm_stamps", CASES, 0x0b, |rng| {
        use cts_model::linearize::{is_valid_delivery_order, relinearize};
        let t = random_trace(rng);
        let seed = rng.gen_range(0u64..1000);
        let r = relinearize(&t, seed);
        assert!(is_valid_delivery_order(r.num_processes(), r.events()));
        let fm_a = FmStore::compute(&t);
        let fm_b = FmStore::compute(&r);
        for id in t.all_event_ids() {
            assert_eq!(fm_a.stamp(&t, id), fm_b.stamp(&r, id));
        }
    });
}

#[test]
fn textio_roundtrip() {
    run_cases("textio_roundtrip", CASES, 0x0c, |rng| {
        let t = random_trace(rng);
        let text = cts_model::textio::write_trace(&t);
        let back = cts_model::textio::parse_trace(&text).expect("roundtrip");
        assert_eq!(back.events(), t.events());
        assert_eq!(back.num_processes(), t.num_processes());
    });
}

#[test]
fn oracle_is_a_strict_partial_order_modulo_sync() {
    run_cases(
        "oracle_is_a_strict_partial_order_modulo_sync",
        CASES,
        0x0d,
        |rng| {
            // Irreflexive always; antisymmetric except for sync halves (which are
            // causally identified by convention).
            let t = random_trace(rng);
            let oracle = Oracle::compute(&t);
            let nodes = cts_model::oracle::NodeMap::build(&t);
            for e in t.all_event_ids() {
                assert!(!oracle.happened_before(&t, e, e));
                for f in t.all_event_ids() {
                    if oracle.happened_before(&t, e, f) && oracle.happened_before(&t, f, e) {
                        assert_eq!(
                            nodes.node(&t, e),
                            nodes.node(&t, f),
                            "mutual order only for sync halves"
                        );
                    }
                }
            }
        },
    );
}
