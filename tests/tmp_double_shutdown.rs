use cts_daemon::pipeline::{Computation, ComputationConfig};
use cts_model::linearize::relinearize;
use cts_workloads::spmd::Stencil1D;
use cts_workloads::Workload;

#[test]
fn sharded_shutdown_is_idempotent() {
    let t = Stencil1D { procs: 8, iters: 4 }.generate(7);
    let mut cfg = ComputationConfig {
        name: "double-shutdown".into(),
        num_processes: t.num_processes(),
        max_cluster_size: 4,
        queue_capacity: 8,
        epoch_every: 64,
        shards: 4,
        durability: None,
    };
    cfg.shards = 4;
    let comp = Computation::spawn(cfg);
    for chunk in relinearize(&t, 3).events().chunks(37) {
        comp.enqueue_events(chunk.to_vec()).unwrap();
    }
    comp.flush(t.num_events() as u64, std::time::Duration::from_secs(30))
        .unwrap();
    comp.shutdown();
    let (tx, rx) = std::sync::mpsc::channel();
    let c2 = comp.clone();
    std::thread::spawn(move || {
        c2.shutdown();
        let _ = tx.send(());
    });
    rx.recv_timeout(std::time::Duration::from_secs(10))
        .expect("second shutdown() hung");
}
