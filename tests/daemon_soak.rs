//! Differential soak: the daemon's online answers must be identical to the
//! offline batch engine's, for the entire standard suite, under concurrent
//! shuffled ingest.
//!
//! This is the strongest end-to-end statement the repo makes about the
//! online path: all 54 computations stream through TCP loopback over ≥8
//! concurrent connections, each computation split into slices that are
//! window-shuffled and salted with duplicate deliveries; after a `Flush`
//! barrier, sampled precedence queries, greatest-concurrent probes, and
//! window scrolls are answered by the daemon and compared 1:1 with a local
//! `ClusterEngine` run over the original in-order trace. By delivery-order
//! invariance the required mismatch count is exactly zero — in both the
//! single-worker and the 4-shard ingest configurations.

use cts_daemon::loadgen::{self, LoadConfig};
use cts_daemon::pipeline::{Computation, ComputationConfig};
use cts_daemon::server::{Daemon, DaemonConfig};
use cts_daemon::shard::StampStrategy;
use cts_daemon::Client;
use cts_model::linearize::relinearize;
use cts_workloads::spmd::Stencil1D;
use cts_workloads::suite::{mini_suite, standard_suite};
use cts_workloads::Workload;

/// The soak body, parameterized by the daemon's ingest shard count: the
/// same 54 computations, the same shuffled concurrent streams, the same
/// zero-mismatch bar — whether one worker delivers everything or four
/// shard workers race over process groups.
fn full_suite_soak(shards: u32, seed: u64) {
    let daemon = Daemon::start(DaemonConfig {
        shards,
        ..DaemonConfig::default()
    })
    .expect("bind loopback");
    let suite = standard_suite();
    let cfg = LoadConfig {
        addr: daemon.local_addr(),
        connections: 8,
        seed,
        precedence_queries: 120,
        gc_probes: 2,
        ..LoadConfig::default()
    };
    let report = loadgen::run(&suite, &cfg).expect("load run");
    assert_eq!(report.computations, 54);
    assert_eq!(
        report.total_events,
        suite
            .iter()
            .map(|e| e.trace.num_events() as u64)
            .sum::<u64>()
    );
    assert!(report.duplicates_sent > 0, "soak must exercise duplicates");
    assert!(report.precedence_checked >= 54 * 100);
    assert!(report.gc_checked >= 54);
    assert_eq!(
        report.mismatches, 0,
        "daemon answers diverged from the offline engine"
    );

    // Metrics surface the abuse the soak inflicted.
    let mut client = Client::connect(daemon.local_addr()).expect("connect");
    let entry = &suite[0];
    client
        .hello(
            &entry.name,
            entry.trace.num_processes(),
            cfg.max_cluster_size,
        )
        .expect("hello");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.events_ingested, entry.trace.num_events() as u64);
    assert!(stats.duplicates_dropped > 0);
    assert!(stats.snapshots_published >= 1);
    assert!(stats.queries_served > 0);
    assert!(stats.ingest_p50_ns > 0);
    assert!(stats.query_p50_ns > 0);
    // The warm-batch re-issue in the load run must hit the shared cache.
    assert!(
        stats.cache_hits > 0,
        "query cache saw no hits during the soak"
    );
    assert!(stats.batch_queries > 0);
    assert!(stats.precedes_p50_ns > 0);
    client.goodbye().expect("goodbye");

    daemon.shutdown();
}

#[test]
fn full_suite_soak_matches_offline_engine() {
    full_suite_soak(1, 2026);
}

#[test]
fn full_suite_soak_sharded_matches_offline_engine() {
    // Four shard workers per computation: cross-shard edges, mid-stream
    // rebalances, and the two-phase cut all run under the same bar.
    full_suite_soak(4, 4052);
}

#[test]
fn daemon_survives_hostile_sessions() {
    // Protocol-level edge cases: queries without a session, bad hellos,
    // unknown events, mismatched re-hello, and a flush that must time out.
    let daemon = Daemon::start(DaemonConfig {
        flush_timeout: std::time::Duration::from_millis(300),
        ..DaemonConfig::default()
    })
    .expect("bind loopback");
    let addr = daemon.local_addr();
    let suite = mini_suite();
    let entry = &suite[0];
    let n = entry.trace.num_processes();

    // Query without Hello → NO_SESSION error surfaces as an io error.
    let mut c = Client::connect(addr).expect("connect");
    let e0 = entry.trace.all_event_ids().next().unwrap();
    assert!(c.precedes(e0, e0).is_err());

    // Bad hello parameters are refused.
    assert!(c.hello("bad", 0, 4).is_err());

    // Proper session; partial stream; flush for more than was sent times
    // out with FLUSH_TIMEOUT rather than hanging.
    c.hello(&entry.name, n, 4).expect("hello");
    let half = entry.trace.num_events() / 2;
    c.stream_events(&entry.trace.events()[..half], 64)
        .expect("stream");
    assert!(c.flush(entry.trace.num_events() as u64).is_err());

    // Flush for what *was* sent succeeds (prefix of a valid order is valid).
    let (_, delivered) = c.flush(half as u64).expect("flush half");
    assert_eq!(delivered, half as u64);

    // Unknown event id in a query → UNKNOWN_EVENT error, session survives.
    let bogus = cts_model::EventId::new(cts_model::ProcessId(0), cts_model::EventIndex(60_000));
    assert!(c.precedes(e0, bogus).is_err());
    assert!(c.precedes(e0, e0).is_ok());

    // Re-hello with different parameters is refused; with the same
    // parameters it reports the computation as existing.
    assert!(c.hello(&entry.name, n + 1, 4).is_err());
    let (_, existing) = c.hello(&entry.name, n, 4).expect("re-hello");
    assert!(existing);

    // A second concurrent connection joins the same computation and sees
    // the same store.
    let mut c2 = Client::connect(addr).expect("connect 2");
    let (_, existing2) = c2.hello(&entry.name, n, 4).expect("hello 2");
    assert!(existing2);
    let w = c2.window(0, 1, 4).expect("window");
    assert!(!w.is_empty());
    c2.goodbye().expect("goodbye 2");
    c.goodbye().expect("goodbye");

    daemon.shutdown();
}

/// Regression: a sharded computation's `shutdown()` must be idempotent —
/// a second call (from any thread) returns instead of hanging on the
/// already-joined shard workers. Originally caught as a hang when the
/// soak's daemon shutdown raced a per-computation shutdown.
#[test]
fn sharded_shutdown_is_idempotent() {
    let t = Stencil1D { procs: 8, iters: 4 }.generate(7);
    let comp = Computation::spawn(ComputationConfig {
        name: "double-shutdown".into(),
        num_processes: t.num_processes(),
        max_cluster_size: 4,
        strategy: StampStrategy::Merge1st {
            max_cluster_size: 4,
        },
        queue_capacity: 8,
        epoch_every: 64,
        shards: 4,
        auto_scale: false,
        balance: false,
        pin_cores: false,
        placement: None,
        durability: None,
        query_cache_capacity: 0,
        retain_epochs: 0,
        retain_bytes: 0,
    });
    for chunk in relinearize(&t, 3).events().chunks(37) {
        comp.enqueue_events(chunk.to_vec()).unwrap();
    }
    comp.flush(t.num_events() as u64, std::time::Duration::from_secs(30))
        .unwrap();
    comp.shutdown();
    let (tx, rx) = std::sync::mpsc::channel();
    let c2 = comp.clone();
    std::thread::spawn(move || {
        c2.shutdown();
        let _ = tx.send(());
    });
    rx.recv_timeout(std::time::Duration::from_secs(10))
        .expect("second shutdown() hung");
}

/// Retention must *cycle* under sustained publishing: with a small epoch
/// cadence the default cap (8 retained epochs) is exceeded many times
/// over, so the retainer has to retire old epochs while still answering
/// time-travel queries over the window it kept — and the stats gauges
/// must show both sides of that churn.
#[test]
fn soak_retention_cycles_under_default_cap() {
    let daemon = Daemon::start(DaemonConfig {
        epoch_every: 32,
        ..DaemonConfig::default()
    })
    .expect("bind loopback");
    let t = Stencil1D {
        procs: 8,
        iters: 40,
    }
    .generate(9);
    let mut c = Client::connect(daemon.local_addr()).expect("connect");
    c.hello("retention-soak", t.num_processes(), 4)
        .expect("hello");
    c.stream_events(t.events(), 128).expect("stream");
    c.flush(t.num_events() as u64).expect("flush");
    let stats = c.stats().expect("stats");
    assert!(
        stats.snapshots_published > 8,
        "cadence too coarse to cycle retention ({} publishes)",
        stats.snapshots_published
    );
    assert!(stats.epochs_retained >= 1);
    assert!(
        stats.epochs_retained <= 8,
        "retained {} epochs, default cap is 8",
        stats.epochs_retained
    );
    assert!(
        stats.epochs_retired > 0,
        "no epochs retired despite {} publishes",
        stats.snapshots_published
    );
    // The window that survived is still fully time-travel-queryable.
    c.proto_hello().expect("proto hello");
    let epochs = c.list_epochs().expect("list epochs");
    assert_eq!(epochs.len() as u64, stats.epochs_retained);
    let first = t.events()[0].id;
    let (oldest, _) = epochs[0];
    assert!(!c.asof_precedes(oldest, first, first).expect("as-of query"));
    c.goodbye().expect("goodbye");
    daemon.shutdown();
}

#[test]
fn wire_shutdown_round_trips() {
    let daemon = Daemon::start(DaemonConfig::default()).expect("bind loopback");
    let addr = daemon.local_addr();
    let mut c = Client::connect(addr).expect("connect");
    c.shutdown_daemon().expect("shutdown ack");
    daemon.wait_for_shutdown_request();
    daemon.shutdown();
    // The daemon is really gone: a fresh connect cannot complete a session.
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.hello("post-shutdown", 2, 2).is_err(),
    };
    assert!(refused, "daemon still serving after shutdown");
}
