//! Integration tests for the fast query read path: batched wire queries,
//! the shared epoch-carried precedence cache, window-scan pagination, and
//! the binary-searched greatest-concurrent rewrite.
//!
//! The invariant throughout is the same one the soak leans on: the daemon's
//! online answers — single, batched, cached, or paginated — must be
//! byte-identical to an offline `ClusterEngine` run over the in-order
//! trace.

use cts_core::strategy::MergeOnFirst;
use cts_core::ClusterEngine;
use cts_daemon::server::{Daemon, DaemonConfig};
use cts_daemon::Client;
use cts_model::{EventId, ProcessId};
use cts_store::queries::{greatest_concurrent, greatest_concurrent_linear, ClusterBackend};
use cts_workloads::spmd::Stencil1D;
use cts_workloads::suite::mini_suite;
use cts_workloads::Workload;

/// Deterministic sampled pairs, the same prime strides the loadgen uses.
fn sample_pairs(ids: &[EventId], k: usize) -> Vec<(EventId, EventId)> {
    (0..k)
        .map(|i| {
            (
                ids[(i * 7919) % ids.len()],
                ids[(i * 104_729 + 13) % ids.len()],
            )
        })
        .collect()
}

/// Batched precedence and greatest-concurrent answers must agree with the
/// single-query wire path and with the offline engine, pair for pair.
#[test]
fn batch_queries_match_singles_and_offline() {
    let daemon = Daemon::start(DaemonConfig::default()).expect("bind loopback");
    let mut client = Client::connect(daemon.local_addr()).expect("connect");
    for entry in mini_suite().iter().take(4) {
        let trace = &entry.trace;
        client
            .hello(&entry.name, trace.num_processes(), 4)
            .expect("hello");
        client.stream_events(trace.events(), 128).expect("stream");
        client.flush(trace.num_events() as u64).expect("flush");

        let offline = ClusterEngine::run(trace, MergeOnFirst::new(4));
        let ids: Vec<EventId> = trace.all_event_ids().collect();
        let pairs = sample_pairs(&ids, 64);

        let singles: Vec<bool> = pairs
            .iter()
            .map(|&(e, f)| client.precedes(e, f).expect("single precedes"))
            .collect();
        let batched = client.precedes_batch(&pairs).expect("batch precedes");
        assert_eq!(batched.len(), pairs.len());
        for (k, &(e, f)) in pairs.iter().enumerate() {
            let want = offline.precedes(trace, e, f);
            assert_eq!(
                singles[k], want,
                "{}: single precedes({e}, {f})",
                entry.name
            );
            assert_eq!(
                batched[k],
                Some(want),
                "{}: batched precedes({e}, {f})",
                entry.name
            );
        }

        let probes: Vec<EventId> = (0..8)
            .map(|i| ids[(i * 15_485_863 + 3) % ids.len()])
            .collect();
        let gc_batched = client.gc_batch(&probes).expect("batch gc");
        for (k, &e) in probes.iter().enumerate() {
            let single = client.greatest_concurrent(e).expect("single gc");
            let want = greatest_concurrent(&mut ClusterBackend(&offline), trace, e);
            assert_eq!(single, want, "{}: single gc({e})", entry.name);
            assert_eq!(
                gc_batched[k].as_ref(),
                Some(&want),
                "{}: batched gc({e})",
                entry.name
            );
        }
    }
    client.goodbye().expect("goodbye");
    daemon.shutdown();
}

/// A batch containing an unknown event answers `None` for that item and
/// real verdicts for the rest — one bad pair must not poison the frame.
#[test]
fn batch_reports_unknown_events_per_item() {
    let daemon = Daemon::start(DaemonConfig::default()).expect("bind loopback");
    let mut client = Client::connect(daemon.local_addr()).expect("connect");
    let suite = mini_suite();
    let entry = &suite[0];
    let trace = &entry.trace;
    client
        .hello(&entry.name, trace.num_processes(), 4)
        .expect("hello");
    client.stream_events(trace.events(), 128).expect("stream");
    client.flush(trace.num_events() as u64).expect("flush");

    let ids: Vec<EventId> = trace.all_event_ids().collect();
    let bogus = EventId::new(ProcessId(0), cts_model::EventIndex(60_000));
    let verdicts = client
        .precedes_batch(&[(ids[0], ids[1]), (ids[0], bogus), (bogus, ids[0])])
        .expect("batch with unknown");
    assert!(verdicts[0].is_some());
    assert_eq!(verdicts[1], None);
    assert_eq!(verdicts[2], None);

    let gc = client.gc_batch(&[ids[0], bogus]).expect("gc with unknown");
    assert!(gc[0].is_some());
    assert_eq!(gc[1], None);

    client.goodbye().expect("goodbye");
    daemon.shutdown();
}

/// Window pagination must resume exactly — no skipped and no duplicated
/// ids — even when new epochs are published between pages. The cursor is
/// a plain row index and snapshots are prefix-monotone, so a scan started
/// on epoch N can finish on epoch N+k and still see one contiguous range.
#[test]
fn window_pagination_resumes_exactly_across_epochs() {
    let t = Stencil1D {
        procs: 4,
        iters: 24,
    }
    .generate(11);
    let p0 = ProcessId(0);
    let rows = t.process_len(p0) as u32;
    assert!(rows >= 12, "fixture too small to paginate");

    let daemon = Daemon::start(DaemonConfig::default()).expect("bind loopback");
    let mut client = Client::connect(daemon.local_addr()).expect("connect");
    client.hello("paged", t.num_processes(), 4).expect("hello");

    // Phase 1: deliver the first half (a prefix of the trace order is a
    // valid delivery order) and take a few small pages.
    let half = t.num_events() / 2;
    client
        .stream_events(&t.events()[..half], 64)
        .expect("stream half");
    client.flush(half as u64).expect("flush half");

    let to = rows + 1;
    let mut got: Vec<EventId> = Vec::new();
    let (page, next) = client.window_page(0, 1, to, 3).expect("page 1");
    assert_eq!(page.len(), 3, "first page should be full");
    assert!(next > 0, "scan cannot be complete after one page of 3");
    got.extend(page);

    // Phase 2: deliver the rest — new epochs are published — then resume
    // the scan from the saved cursor.
    client
        .stream_events(&t.events()[half..], 64)
        .expect("stream rest");
    client.flush(t.num_events() as u64).expect("flush all");

    let mut cursor = next;
    loop {
        let (page, next) = client.window_page(0, cursor, to, 3).expect("page n");
        got.extend(page);
        if next == 0 {
            break;
        }
        assert!(next > cursor, "cursor must advance");
        cursor = next;
    }
    let expect: Vec<EventId> = t.process_events(p0).collect();
    assert_eq!(got, expect, "paged scan diverged from the process row");

    // The transparent client iterator sees the same range in one call.
    let (all, pages) = client.window_paged(0, 1, to, 5).expect("window_paged");
    assert_eq!(all, expect);
    assert!(pages > 1, "page size 5 over {rows} rows must paginate");

    client.goodbye().expect("goodbye");
    daemon.shutdown();
}

/// The binary-searched greatest-concurrent agrees with the linear oracle
/// event-for-event across whole mini-suite computations.
#[test]
fn binary_gc_matches_linear_oracle_on_the_suite() {
    for entry in mini_suite() {
        let trace = &entry.trace;
        let cts = ClusterEngine::run(trace, MergeOnFirst::new(4));
        for e in trace.all_event_ids() {
            let fast = greatest_concurrent(&mut ClusterBackend(&cts), trace, e);
            let slow = greatest_concurrent_linear(&mut ClusterBackend(&cts), trace, e);
            assert_eq!(fast, slow, "{}: gc({e})", entry.name);
        }
    }
}

/// The Stats message surfaces the shared cache and per-query-type latency
/// counters: re-issuing the same queries must produce cache hits, and each
/// exercised query type must record latency.
#[test]
fn stats_expose_cache_counters_and_latency() {
    let daemon = Daemon::start(DaemonConfig::default()).expect("bind loopback");
    let mut client = Client::connect(daemon.local_addr()).expect("connect");
    let suite = mini_suite();
    let entry = &suite[0];
    let trace = &entry.trace;
    client
        .hello(&entry.name, trace.num_processes(), 4)
        .expect("hello");
    client.stream_events(trace.events(), 128).expect("stream");
    client.flush(trace.num_events() as u64).expect("flush");

    let ids: Vec<EventId> = trace.all_event_ids().collect();
    let pairs = sample_pairs(&ids, 32);
    // Twice: the second pass must be answered from the shared cache.
    for _ in 0..2 {
        let _ = client.precedes_batch(&pairs).expect("batch");
    }
    let _ = client.greatest_concurrent(ids[0]).expect("gc");
    let _ = client.window(0, 1, 4).expect("window");

    let stats = client.stats().expect("stats");
    assert!(
        stats.cache_hits > 0,
        "re-issued batch produced no cache hits"
    );
    assert!(stats.cache_misses > 0, "first pass cannot hit");
    assert!(stats.batch_queries >= 2);
    assert!(stats.precedes_p50_ns > 0);
    assert!(stats.gc_p50_ns > 0);
    assert!(stats.window_p50_ns > 0);

    // A second connection to the same computation shares the cache: its
    // first identical batch already hits.
    let mut c2 = Client::connect(daemon.local_addr()).expect("connect 2");
    c2.hello(&entry.name, trace.num_processes(), 4)
        .expect("hello 2");
    let before = client.stats().expect("stats before").cache_hits;
    let _ = c2.precedes_batch(&pairs).expect("batch via c2");
    let after = client.stats().expect("stats after").cache_hits;
    assert!(
        after > before,
        "a second connection's identical batch must hit the shared cache"
    );
    c2.goodbye().expect("goodbye 2");

    client.goodbye().expect("goodbye");
    daemon.shutdown();
}
