//! Replication-fleet integration tests: a `--follow` daemon replays the
//! leader's committed WAL stream through its normal pipeline and must
//! answer queries exactly like the leader (and the offline engine) at
//! every commit point, across leader crashes, follower crashes, torn
//! follower WAL tails, and stale-lease fencing.
//!
//! The correctness argument is delivery-order invariance one more time:
//! the stream carries the leader's post-reorder delivery order, so a
//! replica that applies any committed prefix of it holds a state the
//! offline engine would also produce. Everything here checks that the
//! machinery — checkpoint bootstrap, catch-up reads, resubscription,
//! lease fencing — never surfaces anything *but* such a prefix.

use cts_core::strategy::MergeOnFirst;
use cts_core::ClusterEngine;
use cts_daemon::replication::lease_epoch;
use cts_daemon::server::{Daemon, DaemonConfig, NetBackend};
use cts_daemon::wire::{code, read_msg, write_msg, Msg, MAX_FRAME, PROTOCOL, VERSION, WAL_FORMAT};
use cts_daemon::Client;
use cts_model::{EventId, Trace};
use cts_workloads::{spmd::Stencil1D, Workload};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const COMP: &str = "repl";
const MCS: u32 = 4;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("cts-replication-tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn trace() -> Trace {
    Stencil1D { procs: 8, iters: 6 }.generate(11)
}

fn leader_config(dir: &Path) -> DaemonConfig {
    DaemonConfig {
        data_dir: Some(dir.to_path_buf()),
        // Sync every batch: the durable watermark (= what followers may
        // see) tracks delivery immediately, so tests do not race the
        // group-commit window.
        sync_window: Duration::ZERO,
        ..DaemonConfig::default()
    }
}

fn follower_config(leader: SocketAddr, dir: Option<&Path>) -> DaemonConfig {
    DaemonConfig {
        follow: Some(leader),
        data_dir: dir.map(Path::to_path_buf),
        sync_window: Duration::ZERO,
        ..DaemonConfig::default()
    }
}

/// Stream `events` (a delivery-order prefix) to the daemon and barrier on
/// `expected` delivered.
fn stream(addr: SocketAddr, events: &[cts_model::Event], expected: u64) {
    let mut c = Client::connect(addr).expect("connect");
    c.hello(COMP, trace().num_processes(), MCS).expect("hello");
    c.stream_events(events, 64).expect("stream");
    let (_, delivered) = c.flush(expected).expect("flush");
    assert_eq!(delivered, expected);
    let _ = c.goodbye();
}

/// The last event of each process within `events` — a snapshot answering
/// for all of them necessarily contains every event in `events`, because
/// delivery respects per-process order.
fn probe_ids(events: &[cts_model::Event]) -> Vec<EventId> {
    let mut last: std::collections::HashMap<u32, EventId> = Default::default();
    for e in events {
        last.insert(e.id.process.0, e.id);
    }
    let mut ids: Vec<EventId> = last.into_values().collect();
    ids.sort();
    ids
}

/// Poll the daemon until its published snapshot covers every probe id.
fn wait_covered(addr: SocketAddr, probes: &[EventId], timeout: Duration) {
    let deadline = Instant::now() + timeout;
    let pairs: Vec<(EventId, EventId)> = probes.iter().map(|&id| (id, id)).collect();
    loop {
        // Reconnect each attempt: a follower that is still recovering its
        // own WAL refuses sessions, and a restarting daemon drops them.
        let attempt = Client::connect(addr).and_then(|mut c| {
            c.hello(COMP, trace().num_processes(), MCS)?;
            c.precedes_batch(&pairs)
        });
        if let Ok(verdicts) = attempt {
            if verdicts.len() == pairs.len() && verdicts.iter().all(|v| v.is_some()) {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon at {addr} did not converge on {} probes within {timeout:?}",
            probes.len()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Differential check: a sample of precedence pairs answered by `addr`
/// must match the offline engine run over `t` — and, transitively, any
/// other daemon checked against the same oracle.
fn assert_matches_offline(addr: SocketAddr, t: &Trace) {
    let offline = ClusterEngine::run(t, MergeOnFirst::new(MCS as usize));
    let ids: Vec<EventId> = t.all_event_ids().collect();
    let mut c = Client::connect(addr).expect("connect");
    c.hello(COMP, t.num_processes(), MCS).expect("hello");
    let pairs: Vec<(EventId, EventId)> = (0..300)
        .map(|k| {
            (
                ids[(k * 7919) % ids.len()],
                ids[(k * 104_729 + 13) % ids.len()],
            )
        })
        .collect();
    let got = c.precedes_batch(&pairs).expect("batch");
    assert_eq!(got.len(), pairs.len());
    for (k, v) in got.iter().enumerate() {
        let (e, f) = pairs[k];
        let want = offline.precedes(t, e, f);
        assert_eq!(
            *v,
            Some(want),
            "precedes({e}, {f}) diverged from the offline engine"
        );
    }
    let _ = c.goodbye();
}

// ---- raw-wire helpers (Subscribe is not part of the typed Client) ----

fn raw(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s
}

fn call(s: &mut TcpStream, msg: &Msg) -> Msg {
    write_msg(s, msg).expect("send");
    read_msg(s).expect("recv").expect("peer hung up")
}

fn negotiate(s: &mut TcpStream) {
    match call(
        s,
        &Msg::ProtoHello {
            protocol_max: PROTOCOL,
            wal_max: WAL_FORMAT,
        },
    ) {
        Msg::ProtoHelloAck { protocol, wal } => {
            assert_eq!((protocol, wal), (PROTOCOL, WAL_FORMAT));
        }
        other => panic!("ProtoHello answered {other:?}"),
    }
}

fn subscribe(s: &mut TcpStream, from_offset: u64, prev_lease: u64) -> Msg {
    call(
        s,
        &Msg::Subscribe {
            computation: COMP.into(),
            from_offset,
            prev_lease,
        },
    )
}

// ---- the scenarios ----

/// Baseline: a fresh (memoryless) follower bootstraps the full prefix
/// from the leader's checkpoint + WAL, answers reads identically, and
/// refuses writes with the typed `READ_ONLY` code.
#[test]
fn follower_replicates_reads_and_refuses_writes() {
    let dir = tmpdir("baseline");
    let t = trace();
    let leader = Daemon::start(leader_config(&dir)).expect("leader");
    stream(leader.local_addr(), t.events(), t.num_events() as u64);

    let follower = Daemon::start(follower_config(leader.local_addr(), None)).expect("follower");
    wait_covered(
        follower.local_addr(),
        &probe_ids(t.events()),
        Duration::from_secs(30),
    );
    assert_matches_offline(follower.local_addr(), &t);
    assert_matches_offline(leader.local_addr(), &t);

    // Writes and flush barriers are leader verbs.
    let mut s = raw(follower.local_addr());
    match call(
        &mut s,
        &Msg::Hello {
            computation: COMP.into(),
            num_processes: t.num_processes(),
            max_cluster_size: MCS,
        },
    ) {
        Msg::HelloAck { .. } => {}
        other => panic!("hello answered {other:?}"),
    }
    match call(&mut s, &Msg::Events(vec![t.events()[0]])) {
        Msg::Error { code: c, .. } => assert_eq!(c, code::READ_ONLY),
        other => panic!("Events on a follower answered {other:?}"),
    }
    match call(&mut s, &Msg::Flush { expected_total: 1 }) {
        Msg::Error { code: c, .. } => assert_eq!(c, code::READ_ONLY),
        other => panic!("Flush on a follower answered {other:?}"),
    }

    follower.shutdown();
    leader.shutdown();
}

/// Satellite 1: an unknown verb tag gets a typed `UNSUPPORTED` error and
/// the connection stays usable — on both network backends. Old servers
/// dropping the connection is exactly what version negotiation exists to
/// avoid.
#[test]
fn unknown_verb_yields_typed_unsupported_and_keeps_connection() {
    for backend in [NetBackend::Epoll, NetBackend::Threads] {
        let daemon = Daemon::start(DaemonConfig {
            net: backend,
            ..DaemonConfig::default()
        })
        .expect("daemon");
        let mut s = raw(daemon.local_addr());
        // A well-formed frame with an unassigned tag byte.
        let body = [VERSION, 0xEE, 1, 2, 3];
        let mut frame = (body.len() as u32).min(MAX_FRAME).to_le_bytes().to_vec();
        frame.extend_from_slice(&body);
        s.write_all(&frame).expect("send junk");
        match read_msg(&mut s).expect("recv").expect("dropped") {
            Msg::Error { code: c, .. } => assert_eq!(c, code::UNSUPPORTED, "{backend:?}"),
            other => panic!("unknown tag answered {other:?} on {backend:?}"),
        }
        // Same connection still speaks the protocol.
        match call(
            &mut s,
            &Msg::Hello {
                computation: "still-alive".into(),
                num_processes: 1,
                max_cluster_size: MCS,
            },
        ) {
            Msg::HelloAck { .. } => {}
            other => panic!("post-junk hello answered {other:?} on {backend:?}"),
        }
        daemon.shutdown();
    }
}

/// Satellite 1: `Subscribe` is gated on the `ProtoHello` negotiation —
/// a protocol-1 client gets `UNSUPPORTED`, a negotiated one a lease.
#[test]
fn subscribe_requires_protocol_negotiation() {
    let dir = tmpdir("negotiation");
    let t = trace();
    let leader = Daemon::start(leader_config(&dir)).expect("leader");
    stream(leader.local_addr(), t.events(), t.num_events() as u64);

    let mut s = raw(leader.local_addr());
    match subscribe(&mut s, 0, 0) {
        Msg::Error { code: c, .. } => assert_eq!(c, code::UNSUPPORTED),
        other => panic!("un-negotiated Subscribe answered {other:?}"),
    }
    negotiate(&mut s);
    match subscribe(&mut s, 0, 0) {
        Msg::SubscribeAck {
            lease,
            leader_epoch,
            num_processes,
            start_offset,
            ..
        } => {
            assert_eq!(num_processes, t.num_processes());
            assert_eq!(start_offset, 0);
            assert_eq!(lease_epoch(lease), leader_epoch);
            assert!(leader_epoch >= 1);
        }
        other => panic!("negotiated Subscribe answered {other:?}"),
    }
    leader.shutdown();
}

/// Leader crash mid-stream: the follower detects the dead stream,
/// resubscribes against the restarted incarnation (whose new epoch fences
/// the old lease), and re-converges to zero divergence once the client
/// re-streams the suffix the crash may have cost the leader.
#[test]
fn leader_crash_midstream_follower_reconverges() {
    let dir = tmpdir("leader-crash");
    let t = trace();
    let n = t.num_events();
    let half = n / 2;

    let leader = Daemon::start(leader_config(&dir)).expect("leader");
    let addr = leader.local_addr();
    stream(addr, &t.events()[..half], half as u64);

    let follower = Daemon::start(follower_config(addr, None)).expect("follower");
    wait_covered(
        follower.local_addr(),
        &probe_ids(&t.events()[..half]),
        Duration::from_secs(30),
    );

    // Crash-stop the leader (no graceful sync), restart on the same data
    // dir *and the same address* so the follower's resubscribe loop finds
    // the new incarnation.
    leader.kill();
    let leader2 = Daemon::start(DaemonConfig {
        addr,
        ..leader_config(&dir)
    })
    .expect("leader restart");
    while leader2.is_recovering() {
        std::thread::sleep(Duration::from_millis(5));
    }
    // Re-stream the full trace: recovery holds some delivered prefix, the
    // reorder buffer deduplicates the overlap (the same contract normal
    // clients rely on after a crash).
    stream(addr, t.events(), n as u64);

    wait_covered(
        follower.local_addr(),
        &probe_ids(t.events()),
        Duration::from_secs(60),
    );
    assert_matches_offline(follower.local_addr(), &t);
    assert_matches_offline(addr, &t);

    // The follower went through at least one resubscription, visible in
    // its lag metrics.
    let mut c = Client::connect(follower.local_addr()).expect("connect");
    c.hello(COMP, t.num_processes(), MCS).expect("hello");
    let stats = c.stats().expect("stats");
    assert!(
        stats.repl_resubscribes >= 1,
        "expected a resubscription after the leader crash, stats: {stats:?}"
    );
    assert_eq!(stats.repl_applied, n as u64);

    follower.shutdown();
    leader2.shutdown();
}

/// Follower crash: a durable follower WALs what it applies, so a
/// restarted one recovers locally and resubscribes *from its own tail* —
/// the leader only streams the suffix.
#[test]
fn follower_crash_catches_up_from_own_wal_tail() {
    let dir = tmpdir("follower-crash-leader");
    let fdir = tmpdir("follower-crash-replica");
    let t = trace();
    let n = t.num_events();
    let half = n / 2;

    let leader = Daemon::start(leader_config(&dir)).expect("leader");
    let addr = leader.local_addr();
    stream(addr, &t.events()[..half], half as u64);

    let f1 = Daemon::start(follower_config(addr, Some(&fdir))).expect("follower");
    wait_covered(
        f1.local_addr(),
        &probe_ids(&t.events()[..half]),
        Duration::from_secs(30),
    );
    f1.kill();

    stream(addr, t.events(), n as u64);

    let f2 = Daemon::start(follower_config(addr, Some(&fdir))).expect("follower restart");
    wait_covered(
        f2.local_addr(),
        &probe_ids(t.events()),
        Duration::from_secs(60),
    );
    assert_matches_offline(f2.local_addr(), &t);

    // Incremental catch-up, proven at the wire level: a subscription from
    // the half-way offset (what the restarted replica's own WAL tail
    // resumes from) must start exactly there and stream exactly the
    // suffix of the leader's delivery order — not restart from zero.
    let mut s = raw(addr);
    negotiate(&mut s);
    match subscribe(&mut s, half as u64, 0) {
        Msg::SubscribeAck { start_offset, .. } => assert_eq!(start_offset, half as u64),
        other => panic!("mid-WAL Subscribe answered {other:?}"),
    }
    match read_msg(&mut s).expect("recv").expect("stream closed") {
        Msg::StreamBatch {
            first_offset,
            events,
            ..
        } => {
            assert_eq!(first_offset, half as u64 + 1);
            // One client streamed in trace order, so the leader's delivery
            // order is the trace order and the suffix must match it.
            assert!(!events.is_empty());
            assert_eq!(events[..], t.events()[half..half + events.len()]);
        }
        other => panic!("expected a catch-up StreamBatch, got {other:?}"),
    }
    drop(s);

    f2.shutdown();
    leader.shutdown();
}

/// A follower crash can tear the tail of the follower's *own* WAL. Its
/// recovery truncates the torn record, and the resubscription starts from
/// the truncated offset — the stream heals what the disk lost.
#[test]
fn torn_follower_wal_tail_truncates_and_resubscribes() {
    let dir = tmpdir("torn-leader");
    let fdir = tmpdir("torn-replica");
    let t = trace();
    let n = t.num_events();

    let leader = Daemon::start(leader_config(&dir)).expect("leader");
    let addr = leader.local_addr();
    stream(addr, t.events(), n as u64);

    let f1 = Daemon::start(follower_config(addr, Some(&fdir))).expect("follower");
    wait_covered(
        f1.local_addr(),
        &probe_ids(t.events()),
        Duration::from_secs(30),
    );
    f1.kill();

    // Tear the replica's newest WAL segment mid-record.
    let comp_dir = fdir.join(COMP);
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&comp_dir)
        .expect("replica dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    segments.sort();
    let tail = segments.last().expect("replica wrote no WAL segments");
    let len = std::fs::metadata(tail).unwrap().len();
    assert!(len > 8, "segment too small to tear");
    std::fs::OpenOptions::new()
        .write(true)
        .open(tail)
        .unwrap()
        .set_len(len - 7)
        .unwrap();

    let f2 = Daemon::start(follower_config(addr, Some(&fdir))).expect("follower restart");
    wait_covered(
        f2.local_addr(),
        &probe_ids(t.events()),
        Duration::from_secs(60),
    );
    assert_matches_offline(f2.local_addr(), &t);
    f2.shutdown();
    leader.shutdown();
}

/// Stale-lease fencing at the wire level: a lease minted by one leader
/// incarnation is refused with `LEASE_EXPIRED` by the next, and the fresh
/// subscription's lease carries the new (strictly larger) epoch.
#[test]
fn stale_lease_is_fenced_after_leader_restart() {
    let dir = tmpdir("fencing");
    let t = trace();
    let leader = Daemon::start(leader_config(&dir)).expect("leader");
    let addr = leader.local_addr();
    stream(addr, t.events(), t.num_events() as u64);

    let mut s = raw(addr);
    negotiate(&mut s);
    let old_lease = match subscribe(&mut s, 0, 0) {
        Msg::SubscribeAck { lease, .. } => lease,
        other => panic!("Subscribe answered {other:?}"),
    };
    drop(s);
    leader.shutdown();

    let leader2 = Daemon::start(DaemonConfig {
        addr,
        ..leader_config(&dir)
    })
    .expect("leader restart");
    while leader2.is_recovering() {
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut s = raw(addr);
    negotiate(&mut s);
    match subscribe(&mut s, 0, old_lease) {
        Msg::Error { code: c, .. } => assert_eq!(c, code::LEASE_EXPIRED),
        other => panic!("stale-lease Subscribe answered {other:?}"),
    }
    match subscribe(&mut s, 0, 0) {
        Msg::SubscribeAck {
            lease,
            leader_epoch,
            ..
        } => {
            assert!(lease_epoch(lease) > lease_epoch(old_lease));
            assert_eq!(lease_epoch(lease), leader_epoch);
        }
        other => panic!("fresh Subscribe answered {other:?}"),
    }
    leader2.shutdown();
}
