//! Online adaptive re-clustering: exactness under migration (PR 9).
//!
//! The correctness bar is a *differential oracle*: after any migration
//! schedule, precedence answers must match the causal oracle, and a
//! single-worker daemon's stamps must be **bit-identical** to the offline
//! [`AdaptiveEngine`] re-run over the same delivered prefix — the daemon
//! migrates online, with no stop-the-world freeze barrier, yet nothing it
//! publishes can be distinguished from a fresh offline clustering.
//!
//! The harness mirrors `tests/shard_schedules.rs`: random schedules over
//! the simulated shard cores with the adaptive strategy, shrinking any
//! failing choice vector to a minimal reproducer before panicking. On
//! failure the minimal schedule is also written to a file (under
//! `$CTS_ARTIFACT_DIR`, or the temp dir) so CI can collect it as an
//! artifact.

use cluster_timestamps::prelude::*;
use cts_core::cluster::{AdaptiveEngine, AdaptiveParams};
use cts_daemon::pipeline::{Computation, ComputationConfig, DurabilityConfig};
use cts_daemon::shard::StampStrategy;
use cts_daemon::{Client, Daemon, DaemonConfig, ShardSchedule, SimShards};
use cts_model::linearize::relinearize;
use cts_util::prng::{ChaCha8Rng, Rng};
use cts_workloads::drift::PhaseShiftStencil;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// One message `from → to` (send + matching receive).
fn msg(b: &mut TraceBuilder, from: ProcessId, to: ProcessId) {
    let tok = b.send(from, to).unwrap();
    b.receive(to, tok).unwrap();
}

/// Aggressive drift parameters for small test traces: half-weight EWMA,
/// migrate on the second blocked CR from one cluster, short cooldown. The
/// defaults (`AdaptiveParams::new`) are tuned for the full-size soak
/// fixtures; these make every planted phase change bite within a few
/// events so the tests exercise migrations densely.
fn tuned(max_cluster_size: usize) -> AdaptiveParams {
    AdaptiveParams {
        max_cluster_size,
        merge_threshold: 0.5,
        migrate_after: 2,
        drift_threshold_q16: (1 << 16) / 4,
        ewma_shift: 1,
        cooldown: 4,
    }
}

/// Small planted-drift trace: 8 processes in blocks of 4, ring traffic
/// re-blocked (offset by 2) at each of 3 phases. 288 events.
fn drift_trace() -> Trace {
    PhaseShiftStencil {
        procs: 8,
        phases: 3,
        iters_per_phase: 4,
        block: 4,
    }
    .generate(1)
}

/// All-pairs (every second event, as in shard_schedules) precedence check
/// of `cts` against the causal oracle.
fn assert_precedence_exact(t: &Trace, view: &Trace, cts: &ClusterTimestamps) -> Result<(), String> {
    let oracle = Oracle::compute(t);
    let ids: Vec<EventId> = t.all_event_ids().step_by(2).collect();
    for &e in &ids {
        for &f in &ids {
            if cts.precedes(view, e, f) != oracle.happened_before(t, e, f) {
                return Err(format!("precedence {e} -> {f} wrong"));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------- offline

/// Offline adaptive engine on planted drift: the detector must fire, and
/// every answer must still match the causal oracle. This is the ground
/// truth the online paths are compared against, so it gets the strictest
/// check first.
#[test]
fn offline_adaptive_migrates_and_matches_oracle() {
    let t = drift_trace();
    let eng = {
        let mut e = AdaptiveEngine::new(t.num_processes(), tuned(6));
        for &ev in t.events() {
            e.accept(ev);
        }
        e
    };
    assert!(
        eng.num_migrations() >= 1,
        "planted drift did not provoke a single migration"
    );
    assert!(eng.num_merges() >= 1, "no merges before the migrations");
    let cts = eng.finish();
    assert_precedence_exact(&t, &t, &cts).unwrap();
}

/// A migration whose trigger is one half of a *sync pair*: P1's half of
/// sync(1,2) is the blocked cluster receive that moves P1 from {0,1} into
/// {2,3}, and P2's half then delivers against the post-migration
/// membership. Both halves, the pending-marker fallout on P0, and all
/// surrounding events must answer precedence exactly.
#[test]
fn migration_mid_sync_pair_stays_exact() {
    let p0 = ProcessId(0);
    let p1 = ProcessId(1);
    let p2 = ProcessId(2);
    let p3 = ProcessId(3);
    // High merge threshold: the repeated sync pair between P1 and {2,3}
    // must keep *failing* the merge rule (both halves feed the same pair
    // count) so the drift path — not a merge — resolves the affinity.
    let params = AdaptiveParams {
        merge_threshold: 0.9,
        ..tuned(6)
    };
    let mut b = TraceBuilder::new(4);
    // Form cluster {0,1}: merge fires on the second CR of the pair.
    msg(&mut b, p0, p1);
    msg(&mut b, p0, p1);
    // Form cluster {2,3}.
    msg(&mut b, p2, p3);
    msg(&mut b, p2, p3);
    // P1 drifts toward {2,3}: first sync is a blocked CR for both halves
    // (count 1/4 under the merge rule), the second sync's P1 half is the
    // second blocked CR from {2,3} → P1 migrates there, mid-pair.
    b.sync(p1, p2).unwrap();
    let (half_p1, half_p2) = b.sync(p1, p2).unwrap();
    // Post-migration traffic: P0 (marked pending by P1's departure) sends,
    // P1 receives intra-cluster from its new cluster, P3 crosses to P0.
    msg(&mut b, p0, p1);
    msg(&mut b, p2, p1);
    msg(&mut b, p3, p0);
    let t = b.finish("migration-mid-sync");

    let mut eng = AdaptiveEngine::new(4, params);
    let mut migrated_at_sync_half = false;
    for &ev in t.events() {
        let before = eng.num_migrations();
        eng.accept(ev);
        if eng.num_migrations() > before && ev.id == half_p1 {
            migrated_at_sync_half = true;
        }
    }
    assert!(
        migrated_at_sync_half,
        "the migration trigger must be P1's sync half (got {} migrations)",
        eng.num_migrations()
    );
    let cts = eng.finish();
    // The trigger half is the migration anchor: rule 1 records it Full.
    assert!(
        cts.stamp(&t, half_p1).is_cluster_receive(),
        "migration anchor must carry a full stamp"
    );
    let _ = half_p2;
    assert_precedence_exact(&t, &t, &cts).unwrap();
}

// ------------------------------------------- sharded schedule exploration

const INJECT_CHUNK: usize = 5;

/// Run one complete schedule on the simulated shard cores under the
/// adaptive strategy; returns the migration count on success.
fn run_schedule(
    t: &Trace,
    shards: usize,
    arrival_seed: u64,
    choices: &[u32],
) -> Result<u64, String> {
    let arrivals = relinearize(t, arrival_seed);
    let events = arrivals.events();
    let mut sim = SimShards::with_strategy("adaptive-sched", t.num_processes(), shards, {
        StampStrategy::Adaptive(tuned(6))
    });
    let mut sched = ShardSchedule::new(choices.to_vec());
    let mut next = 0;
    loop {
        let runnable = sim.runnable();
        let can_inject = next < events.len();
        let options = runnable.len() + usize::from(can_inject);
        if options == 0 {
            break;
        }
        let pick = sched.choose(options);
        if pick < runnable.len() {
            sim.step(runnable[pick]);
        } else {
            let end = (next + INJECT_CHUNK).min(events.len());
            sim.inject_batch(&events[next..end]);
            next = end;
        }
    }
    if sim.rejected() != 0 {
        return Err(format!("{} events rejected", sim.rejected()));
    }
    if sim.delivered_total() != t.num_events() as u64 {
        return Err(format!(
            "delivered {} of {} events",
            sim.delivered_total(),
            t.num_events()
        ));
    }
    let (view, cts) = sim.cut();
    if view.num_events() != t.num_events() {
        return Err(format!(
            "cut assembled {} of {} events",
            view.num_events(),
            t.num_events()
        ));
    }
    assert_precedence_exact(t, &view, &cts)?;
    if sim.store().len() != t.num_events() as u64 {
        return Err(format!(
            "store holds {} of {} events",
            sim.store().len(),
            t.num_events()
        ));
    }
    Ok(sim.world().num_migrations)
}

/// Where failure artifacts go: `$CTS_ARTIFACT_DIR` if set (the CI `adapt`
/// stage points it at its workdir), else the temp dir.
fn artifact_dir() -> PathBuf {
    std::env::var_os("CTS_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

/// Persist a minimal failing schedule so CI collects it as an artifact.
/// The format replays by hand: one header line, then the choice vector.
fn write_schedule_artifact(
    trace_name: &str,
    shards: usize,
    arrival_seed: u64,
    choices: &[u32],
    err: &str,
) -> PathBuf {
    let slug: String = trace_name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = artifact_dir().join(format!(
        "minimal-schedule-{slug}-s{shards}-a{arrival_seed}.txt"
    ));
    let body = format!(
        "# minimal failing schedule\ntrace {trace_name}\nshards {shards}\narrival_seed {arrival_seed}\nerror {err}\nchoices {}\n",
        choices
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = std::fs::create_dir_all(artifact_dir());
    let _ = std::fs::write(&path, body);
    path
}

/// Shrink a failing choice vector against an arbitrary failure predicate:
/// prefix halving (any prefix is a complete schedule — the round-robin
/// tail finishes it), then trailing pops, then zeroing. Returns the
/// minimal vector and its error.
fn shrink<F>(fails: F, mut best: Vec<u32>, mut best_err: String) -> (Vec<u32>, String)
where
    F: Fn(&[u32]) -> Result<(), String>,
{
    loop {
        let half = best.len() / 2;
        match fails(&best[..half]) {
            Err(e) => {
                best.truncate(half);
                best_err = e;
                if best.is_empty() {
                    break;
                }
            }
            Ok(()) => break,
        }
    }
    while !best.is_empty() {
        match fails(&best[..best.len() - 1]) {
            Err(e) => {
                best.pop();
                best_err = e;
            }
            Ok(()) => break,
        }
    }
    for i in 0..best.len() {
        if best[i] == 0 {
            continue;
        }
        let saved = best[i];
        best[i] = 0;
        match fails(&best) {
            Err(e) => best_err = e,
            Ok(()) => best[i] = saved,
        }
    }
    (best, best_err)
}

fn shrink_and_panic(
    t: &Trace,
    shards: usize,
    arrival_seed: u64,
    choices: Vec<u32>,
    err: String,
) -> ! {
    let (best, best_err) = shrink(
        |c| run_schedule(t, shards, arrival_seed, c).map(|_| ()),
        choices,
        err,
    );
    let path = write_schedule_artifact(t.name(), shards, arrival_seed, &best, &best_err);
    panic!(
        "{}: shards={shards} arrival_seed={arrival_seed} minimal schedule \
         {best:?} (saved to {}): {best_err}",
        t.name(),
        path.display()
    );
}

/// Random adaptive schedules over the planted-drift trace: every
/// interleaving of shard stepping, injection, and the resulting migration
/// schedule must answer precedence exactly — and across the seeds the
/// detector must actually fire (a sim that never migrates is not testing
/// migration).
#[test]
fn adaptive_random_schedules_match_oracle() {
    let t = drift_trace();
    let mut total_migrations = 0;
    for shards in [2usize, 3] {
        for seed in 0..6u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed * 7919 + shards as u64);
            let choices: Vec<u32> = (0..4 * t.num_events()).map(|_| rng.next_u32()).collect();
            match run_schedule(&t, shards, seed, &choices) {
                Ok(m) => total_migrations += m,
                Err(e) => shrink_and_panic(&t, shards, seed, choices, e),
            }
        }
    }
    assert!(
        total_migrations >= 1,
        "no schedule provoked a migration — the harness is vacuous"
    );
}

/// Exhaustive enumeration over bounded choice vectors for a tiny drifting
/// trace: every base-3 schedule prefix of length 6 (729 schedules), each
/// completed round-robin, under the adaptive strategy.
#[test]
fn tiny_exhaustive_adaptive_schedules() {
    let t = PhaseShiftStencil {
        procs: 4,
        phases: 2,
        iters_per_phase: 3,
        block: 2,
    }
    .generate(1);
    const LEN: usize = 6;
    const BASE: u64 = 3;
    for code in 0..BASE.pow(LEN as u32) {
        let mut c = code;
        let mut choices = Vec::with_capacity(LEN);
        for _ in 0..LEN {
            choices.push((c % BASE) as u32);
            c /= BASE;
        }
        if let Err(e) = run_schedule(&t, 2, 17, &choices) {
            shrink_and_panic(&t, 2, 17, choices, e);
        }
    }
}

/// The shrinking reporter itself: fed a synthetic failure predicate with a
/// known minimal form ("contains a choice ≥ 5"), the shrinker must reduce
/// any failing vector to exactly one surviving element, and the artifact
/// file must round-trip the schedule.
#[test]
fn shrinker_emits_minimal_schedule_artifact() {
    let fails = |c: &[u32]| -> Result<(), String> {
        if c.iter().any(|&x| x >= 5) {
            Err("synthetic failure".into())
        } else {
            Ok(())
        }
    };
    let noisy: Vec<u32> = vec![0, 3, 9, 1, 7, 0, 2, 5, 5, 8, 1];
    let (minimal, err) = shrink(fails, noisy, "synthetic failure".into());
    // Shrinking is prefix-preserving (a schedule's choices are positional),
    // so the canonical minimal form is all-zeros up to one surviving
    // failing tail choice: the tail cannot be popped, the rest cannot be
    // anything but zero.
    assert!(fails(&minimal).is_err());
    let (zeros, tail) = minimal.split_at(minimal.len() - 1);
    assert!(tail[0] >= 5, "the surviving tail choice must still fail");
    assert!(
        zeros.iter().all(|&c| c == 0),
        "prefix not canonical: {minimal:?}"
    );
    assert!(
        fails(&minimal[..minimal.len() - 1]).is_ok(),
        "dropping the tail must make it pass: {minimal:?}"
    );

    let path = write_schedule_artifact("unit/shrinker", 2, 42, &minimal, &err);
    let body = std::fs::read_to_string(&path).expect("artifact written");
    assert!(body.contains("shards 2"), "artifact: {body}");
    assert!(body.contains("arrival_seed 42"));
    let line = body
        .lines()
        .find(|l| l.starts_with("choices "))
        .expect("choices line");
    let parsed: Vec<u32> = line["choices ".len()..]
        .split_whitespace()
        .map(|w| w.parse().unwrap())
        .collect();
    assert_eq!(parsed, minimal, "artifact must round-trip the schedule");
    let _ = std::fs::remove_file(path);
}

// ----------------------------------------------------- daemon (pipeline)

fn adaptive_config(name: &str, n: u32, epoch_every: u64) -> ComputationConfig {
    ComputationConfig {
        name: name.to_string(),
        num_processes: n,
        max_cluster_size: 6,
        strategy: StampStrategy::Adaptive(tuned(6)),
        queue_capacity: 8,
        epoch_every,
        shards: 1,
        auto_scale: false,
        balance: false,
        pin_cores: false,
        placement: None,
        durability: None,
        query_cache_capacity: 0,
        retain_epochs: 0,
        retain_bytes: 0,
    }
}

/// A single-worker adaptive daemon's published stamps are bit-identical to
/// the offline [`AdaptiveEngine`] run over the same delivered prefix — the
/// oracle statement from DESIGN.md Appendix H, verbatim.
#[test]
fn single_worker_stamps_bit_identical_to_offline() {
    let t = drift_trace();
    let comp = Computation::spawn(adaptive_config("bitident", t.num_processes(), 64));
    for chunk in relinearize(&t, 9).events().chunks(23) {
        comp.enqueue_events(chunk.to_vec()).unwrap();
    }
    comp.flush(t.num_events() as u64, Duration::from_secs(30))
        .unwrap();
    let snap = comp.snapshot();
    assert_eq!(snap.delivered, t.num_events() as u64);
    let migrations = comp.metrics().drift_migrations.load(Ordering::Relaxed);
    assert!(
        migrations >= 1,
        "the online run must have migrated (got {migrations})"
    );

    // Fresh offline clustering of the delivered prefix, in its delivery
    // order: stamps must match *bit for bit* (same enum arms, same version
    // ids, same clocks), not merely answer the same queries.
    let offline = AdaptiveEngine::run(&snap.trace, tuned(6));
    assert_eq!(
        snap.cts.num_merges(),
        offline.num_merges(),
        "merge schedule diverged"
    );
    assert_eq!(snap.cts.stamps().len(), offline.stamps().len());
    for (pos, (got, want)) in snap.cts.stamps().iter().zip(offline.stamps()).enumerate() {
        assert_eq!(got, want, "stamp diverged at delivery position {pos}");
    }
    assert_precedence_exact(&t, &snap.trace, &snap.cts).unwrap();
    comp.shutdown();
}

/// Migrations land *across epoch publishes*: with a small epoch cadence,
/// retained historical epochs straddle the migration schedule, and every
/// retained epoch must itself be bit-identical to an offline re-run of
/// exactly that prefix (time-travel answers never see a half-migrated
/// state).
#[test]
fn migrations_across_epoch_publish_stay_exact() {
    let t = drift_trace();
    let mut cfg = adaptive_config("epochs", t.num_processes(), 32);
    cfg.retain_epochs = 16;
    let comp = Computation::spawn(cfg);
    for chunk in t.events().chunks(31) {
        comp.enqueue_events(chunk.to_vec()).unwrap();
    }
    comp.flush(t.num_events() as u64, Duration::from_secs(30))
        .unwrap();
    assert!(comp.metrics().drift_migrations.load(Ordering::Relaxed) >= 1);

    let epochs = comp.retainer().list();
    assert!(
        epochs.len() >= 3,
        "need several retained epochs to straddle migrations (got {})",
        epochs.len()
    );
    let mut migration_counts = Vec::new();
    for info in &epochs {
        let snap = comp.retainer().get(info.epoch).expect("retained");
        let mut eng = AdaptiveEngine::new(snap.trace.num_processes(), tuned(6));
        for &ev in snap.trace.events() {
            eng.accept(ev);
        }
        migration_counts.push(eng.num_migrations());
        let offline = eng.finish();
        for (pos, (got, want)) in snap.cts.stamps().iter().zip(offline.stamps()).enumerate() {
            assert_eq!(
                got, want,
                "epoch {}: stamp diverged at delivery position {pos}",
                info.epoch
            );
        }
    }
    assert!(
        migration_counts.first() < migration_counts.last(),
        "migrations must land between retained epochs, got {migration_counts:?}"
    );
    comp.shutdown();
}

/// Crash-stop (`kill()`: workers die without the final sync — the
/// in-process SIGKILL) and recovery: replaying the WAL through the
/// adaptive engine must land in the *same* migration schedule, and after
/// re-streaming the rest the stamps are bit-identical to offline again.
#[test]
fn kill_recover_replays_migration_schedule() {
    let t = drift_trace();
    let dir = std::env::temp_dir().join("cts-adaptive-tests/kill-recover");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut cfg = adaptive_config("killrec", t.num_processes(), 64);
    cfg.durability = Some(DurabilityConfig {
        dir: dir.clone(),
        sync_window: Duration::ZERO,
        checkpoint_every: 0,
        wal_byte_budget: None,
    });

    let (comp, _) = Computation::spawn_durable(cfg.clone()).expect("spawn");
    let half = t.num_events() / 2;
    for chunk in t.events()[..half].chunks(19) {
        comp.enqueue_events(chunk.to_vec()).unwrap();
    }
    comp.flush(half as u64, Duration::from_secs(30)).unwrap();
    let migrations_before = comp.metrics().drift_migrations.load(Ordering::Relaxed);
    assert!(
        migrations_before >= 1,
        "the first half must already migrate for the replay to be interesting"
    );
    comp.kill();

    let (comp, report) = Computation::spawn_durable(cfg).expect("respawn");
    assert_eq!(
        report.checkpoint_events + report.wal_events,
        half as u64,
        "WAL replay short"
    );
    assert_eq!(
        comp.metrics().drift_migrations.load(Ordering::Relaxed),
        migrations_before,
        "recovery replayed a different migration schedule"
    );
    // Re-stream everything; duplicates are dropped, the tail is delivered.
    for chunk in t.events().chunks(19) {
        comp.enqueue_events(chunk.to_vec()).unwrap();
    }
    comp.flush(t.num_events() as u64, Duration::from_secs(30))
        .unwrap();
    let snap = comp.snapshot();
    let offline = AdaptiveEngine::run(&snap.trace, tuned(6));
    assert_eq!(snap.cts.stamps().len(), offline.stamps().len());
    for (pos, (got, want)) in snap.cts.stamps().iter().zip(offline.stamps()).enumerate() {
        assert_eq!(got, want, "stamp diverged at delivery position {pos}");
    }
    assert_precedence_exact(&t, &snap.trace, &snap.cts).unwrap();
    comp.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A follower daemon replays the leader's WAL through its own adaptive
/// engine: same delivery order + deterministic drift decisions ⇒ the
/// follower converges to the identical partition, merge count, and
/// migration count, and its cluster map matches the leader's field for
/// field.
#[test]
fn follower_replays_leader_migration_stream() {
    let t = drift_trace();
    let dir = std::env::temp_dir().join("cts-adaptive-tests/follower-leader");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let leader = Daemon::start(DaemonConfig {
        data_dir: Some(dir.clone()),
        sync_window: Duration::ZERO,
        adaptive: Some(tuned(6)),
        ..DaemonConfig::default()
    })
    .expect("leader");
    let follower = Daemon::start(DaemonConfig {
        follow: Some(leader.local_addr()),
        sync_window: Duration::ZERO,
        adaptive: Some(tuned(6)),
        ..DaemonConfig::default()
    })
    .expect("follower");

    let mut c = Client::connect(leader.local_addr()).expect("connect");
    c.proto_hello().expect("negotiate");
    c.hello("drift", t.num_processes(), 6).expect("hello");
    c.stream_events(t.events(), 64).expect("stream");
    c.flush(t.num_events() as u64).expect("flush");
    let leader_map = c.cluster_map().expect("leader cluster map");
    let _ = c.goodbye();
    assert!(
        leader_map.migrations >= 1,
        "leader never migrated — nothing to replicate"
    );

    // Poll the follower until its replica covers the whole prefix.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let follower_map = loop {
        let attempt = Client::connect(follower.local_addr()).and_then(|mut f| {
            f.proto_hello()?;
            f.hello("drift", t.num_processes(), 6)?;
            f.cluster_map()
        });
        match attempt {
            Ok(map) if map.delivered == t.num_events() as u64 => break map,
            _ => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "follower did not converge in time"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    assert_eq!(
        follower_map.partition, leader_map.partition,
        "partitions diverged"
    );
    assert_eq!(
        follower_map.merges, leader_map.merges,
        "merge counts diverged"
    );
    assert_eq!(
        follower_map.migrations, leader_map.migrations,
        "migration counts diverged"
    );
    assert_eq!(
        follower_map.cluster_receives, leader_map.cluster_receives,
        "cluster-receive counts diverged"
    );
    follower.shutdown();
    leader.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
