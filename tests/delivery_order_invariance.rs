//! Delivery-order invariance: a monitoring entity may observe the same
//! computation in many valid orders. Fidge/Mattern stamps must be identical
//! per event under every order; cluster timestamps may *cluster* differently
//! (dynamic merge decisions are order-dependent by nature) but must stay
//! exact for precedence under every order.

use cluster_timestamps::prelude::*;
use cts_core::cluster::ClusterEngine;
use cts_model::linearize::{is_valid_delivery_order, relinearize};
use cts_workloads::suite::mini_suite;

#[test]
fn fm_stamps_are_delivery_order_invariant() {
    for entry in mini_suite().into_iter().take(6) {
        let t = &entry.trace;
        let fm = FmStore::compute(t);
        for seed in 0..3 {
            let r = relinearize(t, seed);
            assert!(is_valid_delivery_order(r.num_processes(), r.events()));
            let fm2 = FmStore::compute(&r);
            for id in t.all_event_ids() {
                assert_eq!(
                    fm.stamp(t, id),
                    fm2.stamp(&r, id),
                    "{}: stamp of {id} changed under reordering (seed {seed})",
                    entry.name
                );
            }
        }
    }
}

#[test]
fn cluster_precedence_is_exact_under_any_order() {
    for entry in mini_suite().into_iter().take(4) {
        let t = &entry.trace;
        let oracle = Oracle::compute(t);
        let ids: Vec<EventId> = t.all_event_ids().step_by(3).collect();
        for seed in 0..3 {
            let r = relinearize(t, seed);
            let cts = ClusterEngine::run(&r, MergeOnFirst::new(4));
            for &e in &ids {
                for &f in &ids {
                    assert_eq!(
                        cts.precedes(&r, e, f),
                        oracle.happened_before(t, e, f),
                        "{} seed {seed}: {e} -> {f}",
                        entry.name
                    );
                }
            }
        }
    }
}

#[test]
fn oracle_node_counts_stable_under_reordering() {
    for entry in mini_suite().into_iter().take(4) {
        let t = &entry.trace;
        let o = Oracle::compute(t);
        let r = relinearize(t, 9);
        let o2 = Oracle::compute(&r);
        for id in t.all_event_ids() {
            assert_eq!(
                o.past_size(t, id),
                o2.past_size(&r, id),
                "{}: past of {id}",
                entry.name
            );
        }
    }
}
