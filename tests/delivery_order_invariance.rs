//! Delivery-order invariance: a monitoring entity may observe the same
//! computation in many valid orders. Fidge/Mattern stamps must be identical
//! per event under every order; cluster timestamps may *cluster* differently
//! (dynamic merge decisions are order-dependent by nature) but must stay
//! exact for precedence under every order.

use cluster_timestamps::prelude::*;
use cts_core::cluster::ClusterEngine;
use cts_daemon::{ShardSchedule, SimShards};
use cts_model::linearize::{is_valid_delivery_order, relinearize};
use cts_workloads::spmd::Stencil1D;
use cts_workloads::suite::mini_suite;

#[test]
fn fm_stamps_are_delivery_order_invariant() {
    for entry in mini_suite().into_iter().take(6) {
        let t = &entry.trace;
        let fm = FmStore::compute(t);
        for seed in 0..3 {
            let r = relinearize(t, seed);
            assert!(is_valid_delivery_order(r.num_processes(), r.events()));
            let fm2 = FmStore::compute(&r);
            for id in t.all_event_ids() {
                assert_eq!(
                    fm.stamp(t, id),
                    fm2.stamp(&r, id),
                    "{}: stamp of {id} changed under reordering (seed {seed})",
                    entry.name
                );
            }
        }
    }
}

#[test]
fn cluster_precedence_is_exact_under_any_order() {
    for entry in mini_suite().into_iter().take(4) {
        let t = &entry.trace;
        let oracle = Oracle::compute(t);
        let ids: Vec<EventId> = t.all_event_ids().step_by(3).collect();
        for seed in 0..3 {
            let r = relinearize(t, seed);
            let cts = ClusterEngine::run(&r, MergeOnFirst::new(4));
            for &e in &ids {
                for &f in &ids {
                    assert_eq!(
                        cts.precedes(&r, e, f),
                        oracle.happened_before(t, e, f),
                        "{} seed {seed}: {e} -> {f}",
                        entry.name
                    );
                }
            }
        }
    }
}

/// Drive an arrival sequence through the daemon's reorder buffer and return
/// the delivered order as a trace.
fn reorder_to_trace(name: &str, num_processes: u32, arrivals: &[Event]) -> Trace {
    let mut buf = cts_daemon::ReorderBuffer::new(num_processes);
    let mut delivered = Vec::new();
    for &ev in arrivals {
        delivered.extend(buf.offer(ev).expect("only well-formed events offered"));
    }
    assert_eq!(buf.depth(), 0, "events stuck in the reorder buffer");
    Trace::from_delivery_order(name, num_processes, delivered)
        .expect("reorder buffer must emit a valid delivery order")
}

#[test]
fn duplicate_deliveries_leave_stamps_unchanged() {
    // Network-level retransmits: every event arrives twice (second copy
    // immediately, worst case for dedup). The delivered order must be valid
    // and the Fidge/Mattern stamps identical to in-order delivery.
    for entry in mini_suite().into_iter().take(4) {
        let t = &entry.trace;
        let shuffled = relinearize(t, 31);
        let mut arrivals = Vec::with_capacity(t.num_events() * 2);
        for &ev in shuffled.events() {
            arrivals.push(ev);
            arrivals.push(ev);
        }
        let r = reorder_to_trace("dup", t.num_processes(), &arrivals);
        assert_eq!(r.num_events(), t.num_events(), "{}", entry.name);
        let fm = FmStore::compute(t);
        let fm2 = FmStore::compute(&r);
        for id in t.all_event_ids() {
            assert_eq!(
                fm.stamp(t, id),
                fm2.stamp(&r, id),
                "{}: duplicate delivery changed the stamp of {id}",
                entry.name
            );
        }
    }
}

#[test]
fn drop_then_retransmit_converges_to_exact_precedence() {
    // Lossy transport: every third event of the arrival sequence is dropped
    // on first transmission and retransmitted at the end (in reverse, with
    // one extra duplicate round). The buffer must hold the dependents and
    // release them exactly once; cluster precedence stays exact.
    for entry in mini_suite().into_iter().take(4) {
        let t = &entry.trace;
        let shuffled = relinearize(t, 57);
        let mut first_pass = Vec::new();
        let mut dropped = Vec::new();
        for (i, &ev) in shuffled.events().iter().enumerate() {
            if i % 3 == 2 {
                dropped.push(ev);
            } else {
                first_pass.push(ev);
            }
        }
        dropped.reverse();
        let mut arrivals = first_pass;
        arrivals.extend(&dropped);
        arrivals.extend(&dropped); // retransmit storm: everything again
        let r = reorder_to_trace("retx", t.num_processes(), &arrivals);
        assert_eq!(r.num_events(), t.num_events(), "{}", entry.name);

        let oracle = Oracle::compute(t);
        let cts = ClusterEngine::run(&r, MergeOnFirst::new(4));
        let ids: Vec<EventId> = t.all_event_ids().step_by(3).collect();
        for &e in &ids {
            for &f in &ids {
                assert_eq!(
                    cts.precedes(&r, e, f),
                    oracle.happened_before(t, e, f),
                    "{}: {e} -> {f} after drop/retransmit",
                    entry.name
                );
            }
        }
    }
}

/// Exact-precedence check of a sharded simulation against the causal oracle,
/// plus the store-holds-every-event-once invariant.
fn assert_shards_exact(t: &Trace, sim: &mut SimShards, ctx: &str) {
    assert_eq!(sim.rejected(), 0, "{ctx}: events rejected");
    assert_eq!(
        sim.delivered_total(),
        t.num_events() as u64,
        "{ctx}: not everything delivered"
    );
    let (trace, cts) = sim.cut();
    assert_eq!(trace.num_events(), t.num_events(), "{ctx}: short cut");
    let oracle = Oracle::compute(t);
    for e in t.all_event_ids() {
        for f in t.all_event_ids() {
            assert_eq!(
                cts.precedes(&trace, e, f),
                oracle.happened_before(t, e, f),
                "{ctx}: {e} -> {f}"
            );
        }
    }
    assert_eq!(
        sim.store().len(),
        t.num_events() as u64,
        "{ctx}: store length"
    );
}

#[test]
fn receive_before_send_across_shards() {
    // Inject the delivery order *reversed*: every receive reaches its
    // owning shard before the matching send reaches the sender's shard, so
    // each cross-shard edge must park on the clock exchange and resolve
    // only when the send's frontier is finally published by the peer shard.
    let t = Stencil1D { procs: 6, iters: 3 }.generate(13);
    for shards in [2, 3] {
        let mut sim = SimShards::new("rx-first", t.num_processes(), shards, 4);
        for &ev in t.events().iter().rev() {
            sim.inject(ev);
        }
        sim.run_to_quiescence(&mut ShardSchedule::round_robin());
        assert_shards_exact(&t, &mut sim, &format!("{shards} shards reversed"));
    }
}

#[test]
fn duplicate_delivery_straddling_a_rebalance() {
    // Phase 1 delivers the whole computation; stencil traffic merges
    // neighboring clusters, migrating processes between shards. Phase 2
    // re-injects every event: the duplicates now route to the *new* owner
    // of each migrated process, which must recognize them by watermark even
    // though a different shard performed the original delivery.
    let t = Stencil1D { procs: 8, iters: 4 }.generate(3);
    let mut sim = SimShards::new("dup-rebalance", t.num_processes(), 4, 4);
    for &ev in t.events() {
        sim.inject(ev);
    }
    sim.run_to_quiescence(&mut ShardSchedule::round_robin());
    assert_eq!(sim.delivered_total(), t.num_events() as u64);
    let moved = (0..t.num_processes()).any(|p| sim.shard_of(ProcessId(p)) != (p as usize * 4 / 8));
    assert!(moved, "no process migrated; duplicates would not straddle");
    for &ev in relinearize(&t, 77).events() {
        sim.inject(ev);
    }
    sim.run_to_quiescence(&mut ShardSchedule::round_robin());
    assert_eq!(
        sim.duplicates(),
        t.num_events() as u64,
        "every re-injected event must be dropped as a duplicate"
    );
    assert_shards_exact(&t, &mut sim, "after duplicate storm");
}

#[test]
fn cluster_merge_rebalances_midstream() {
    // Feed the first half, let merges rebalance ownership, then feed the
    // rest: late events are routed by the *new* table, and any that raced
    // the migration are forwarded. Precedence must stay exact throughout.
    let t = Stencil1D { procs: 8, iters: 5 }.generate(29);
    let mut sim = SimShards::new("midstream", t.num_processes(), 4, 4);
    let events = t.events();
    let half = events.len() / 2;
    for &ev in &events[..half] {
        sim.inject(ev);
    }
    sim.run_to_quiescence(&mut ShardSchedule::round_robin());
    let moved = (0..t.num_processes()).any(|p| sim.shard_of(ProcessId(p)) != (p as usize * 4 / 8));
    assert!(moved, "first half must already force a rebalance");
    for &ev in &events[half..] {
        sim.inject(ev);
    }
    sim.run_to_quiescence(&mut ShardSchedule::round_robin());
    assert_shards_exact(&t, &mut sim, "midstream rebalance");
}

#[test]
fn oracle_node_counts_stable_under_reordering() {
    for entry in mini_suite().into_iter().take(4) {
        let t = &entry.trace;
        let o = Oracle::compute(t);
        let r = relinearize(t, 9);
        let o2 = Oracle::compute(&r);
        for id in t.all_event_ids() {
            assert_eq!(
                o.past_size(t, id),
                o2.past_size(&r, id),
                "{}: past of {id}",
                entry.name
            );
        }
    }
}
