//! Integration of the store substrate with the timestamp engines: one
//! monitoring-entity pipeline end to end, plus cross-backend query agreement.

use cluster_timestamps::prelude::*;
use cts_core::cluster::ClusterEngine;
use cts_store::event_store::EventStore;
use cts_store::queries::{greatest_concurrent, scroll_window, ClusterBackend, FmBackend};
use cts_store::timestamp_cache::TimestampCache;
use cts_store::vm_sim::PagedTimestampStore;
use cts_workloads::suite::mini_suite;
use cts_workloads::web::WebServer;

#[test]
fn online_pipeline_ingests_and_answers_queries() {
    let trace = WebServer {
        clients: 5,
        workers: 3,
        requests: 40,
        affinity: 0.8,
    }
    .generate(99);
    let mut store = EventStore::new(trace.num_processes());
    let mut engine = ClusterEngine::new(
        trace.num_processes(),
        MergeOnNth::new(trace.num_processes(), 6, 2.0),
    );
    for &ev in trace.events() {
        store.insert(ev).unwrap();
        engine.accept(ev);
    }
    assert_eq!(store.len(), trace.num_events());
    let cts = engine.finish();
    let fm = FmStore::compute(&trace);
    let oracle = Oracle::compute(&trace);

    // The store's transitive-reduction edges agree with the trace.
    for rec in store.records() {
        assert_eq!(rec.preds, trace.immediate_predecessors(rec.event.id));
        for succ in &rec.succs {
            assert!(oracle.happened_before(&trace, rec.event.id, *succ));
        }
    }

    // Queries agree across backends.
    let probe = trace.at(trace.num_events() / 2).id;
    let via_fm = greatest_concurrent(&mut FmBackend(&fm), &trace, probe);
    let via_ct = greatest_concurrent(&mut ClusterBackend(&cts), &trace, probe);
    let mut cache = TimestampCache::new(&trace, 16);
    let via_cache = greatest_concurrent(&mut cache, &trace, probe);
    let mut paged = PagedTimestampStore::new(&trace, &fm, 128);
    let via_paged = greatest_concurrent(&mut paged, &trace, probe);
    assert_eq!(via_fm, via_ct);
    assert_eq!(via_fm, via_cache);
    assert_eq!(via_fm, via_paged);
}

#[test]
fn scrolling_is_backend_independent() {
    for entry in mini_suite().into_iter().take(4) {
        let t = &entry.trace;
        let fm = FmStore::compute(t);
        let cts = ClusterEngine::run(t, MergeOnFirst::new(4));
        let a = scroll_window(&mut FmBackend(&fm), t, 1, 5);
        let b = scroll_window(&mut ClusterBackend(&cts), t, 1, 5);
        assert_eq!(a, b, "{}", entry.name);
    }
}

#[test]
fn paged_store_reports_thrash_on_scattered_access() {
    let trace = WebServer {
        clients: 8,
        workers: 4,
        requests: 120,
        affinity: 0.5,
    }
    .generate(5);
    let fm = FmStore::compute(&trace);
    // Frames hold only a sliver of the stamp data.
    let mut paged = PagedTimestampStore::with_page_size(&trace, &fm, 4, 64);
    let probe = trace.at(trace.num_events() / 2).id;
    let _ = greatest_concurrent(&mut paged, &trace, probe);
    // Every process's scan touches pages that can't all stay resident.
    assert!(
        paged.page_reads() as usize >= trace.num_processes() as usize / 2,
        "expected thrash, got {} page reads",
        paged.page_reads()
    );
}

#[test]
fn btree_window_matches_trace_contents() {
    for entry in mini_suite().into_iter().take(3) {
        let t = &entry.trace;
        let store = EventStore::from_trace(t);
        for p in 0..t.num_processes() {
            let p = ProcessId(p);
            let len = t.process_len(p) as u32;
            let w = store.process_window(p, 1, len + 1);
            assert_eq!(w.len(), len as usize, "{} {p}", entry.name);
            for (i, rec) in w.iter().enumerate() {
                assert_eq!(rec.event.id, EventId::new(p, EventIndex(i as u32 + 1)));
            }
        }
    }
}
