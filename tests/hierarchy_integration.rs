//! Multi-level hierarchical timestamps across the mini suite: exactness at
//! every depth, and the structural monotonicity deeper levels buy.

use cluster_timestamps::prelude::*;
use cts_core::hierarchy::{HierarchicalTimestamps, NestedClustering};
use cts_model::comm::CommMatrix;
use cts_workloads::suite::mini_suite;

fn pairs(trace: &Trace) -> Vec<(EventId, EventId)> {
    let ids: Vec<EventId> = trace.all_event_ids().collect();
    let step = (ids.len() / 40).max(1);
    let sample: Vec<EventId> = ids.into_iter().step_by(step).collect();
    sample
        .iter()
        .flat_map(|&a| sample.iter().map(move |&b| (a, b)))
        .collect()
}

#[test]
fn hierarchical_precedence_matches_oracle_at_depths_1_and_2() {
    for entry in mini_suite() {
        let t = &entry.trace;
        let oracle = Oracle::compute(t);
        for caps in [vec![3], vec![3, 6]] {
            let h = HierarchicalTimestamps::build_greedy(t, &caps);
            for (e, f) in pairs(t) {
                assert_eq!(
                    h.precedes(t, e, f),
                    oracle.happened_before(t, e, f),
                    "{} caps {caps:?}: {e} -> {f}",
                    entry.name
                );
            }
        }
    }
}

#[test]
fn deeper_hierarchies_never_store_more_elements() {
    use cts_core::cluster::Encoding;
    for entry in mini_suite() {
        let t = &entry.trace;
        let enc = Encoding::Actual {
            n: t.num_processes() as usize,
        };
        let flat = HierarchicalTimestamps::build_greedy(t, &[3]);
        let deep = HierarchicalTimestamps::build_greedy(t, &[3, 6]);
        assert!(
            deep.total_elements(enc) <= flat.total_elements(enc),
            "{}: deep {} > flat {}",
            entry.name,
            deep.total_elements(enc),
            flat.total_elements(enc)
        );
    }
}

#[test]
fn nested_clustering_levels_refine() {
    for entry in mini_suite().into_iter().take(6) {
        let t = &entry.trace;
        let m = CommMatrix::from_trace(t);
        let nc = NestedClustering::build(&m, &[2, 4, 8]);
        let n = t.num_processes();
        for p in 0..n {
            for q in 0..n {
                let (p, q) = (ProcessId(p), ProcessId(q));
                // Once together, always together at coarser levels.
                let mut together = false;
                for k in 0..nc.num_levels() {
                    let now = nc.cluster_of(k, p) == nc.cluster_of(k, q);
                    assert!(
                        !together || now,
                        "{}: {p},{q} split at level {k}",
                        entry.name
                    );
                    together = now;
                }
            }
        }
    }
}

#[test]
fn hierarchy_agrees_with_flat_engine_semantics() {
    // Depth-1 hierarchy and the flat static pipeline at the same cap answer
    // every query identically (both are exact), and classify comparable
    // numbers of full-width receives.
    use cts_core::two_pass::static_pipeline;
    for entry in mini_suite().into_iter().take(6) {
        let t = &entry.trace;
        let h = HierarchicalTimestamps::build_greedy(t, &[4]);
        let (_, flat) = static_pipeline(t, 4);
        for (e, f) in pairs(t) {
            assert_eq!(
                h.precedes(t, e, f),
                flat.precedes(t, e, f),
                "{}: {e} -> {f}",
                entry.name
            );
        }
        assert_eq!(
            *h.receives_by_level().last().unwrap(),
            flat.num_cluster_receives(),
            "{}",
            entry.name
        );
    }
}
