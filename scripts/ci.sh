#!/usr/bin/env bash
# The CI pipeline, runnable locally and in .github/workflows/ci.yml.
#
# Stages (in order):
#   fmt       rustfmt in check mode
#   clippy    cargo clippy --all-targets with warnings denied
#   build     offline release build of the whole workspace
#   test      full offline test suite
#   smoke     daemon loopback smoke over TCP + ingest throughput record
#             + sharded (--shards 4) full-suite differential soak
#   recovery  crash-stop the daemon mid-suite, restart, verify zero
#             differential mismatches after WAL/checkpoint recovery
#   query     focused query_path bench run holding the read-path claims:
#             warm-cache precedence >= 5x the cold path, batched wire
#             round trips >= 5x single RTTs (host-independent ratios)
#   net       C10K soak against an external daemon process: 10,000 idle
#             connections held while the differential smoke suite runs
#             clean; thread-backend differential; idle-cost ratio gates
#             (epoll <= 1/10 the thread backend's idle CPU and RSS/conn)
#   repl      replication fleet: one durable leader + two --follow daemon
#             processes, the full 54-computation suite soaked with the
#             differential checks fanned across the fleet (0 mismatches),
#             and the read scale-out claim gated: 2 followers >= 1.8x the
#             leader's warm batched-query throughput (scaled by host cpus)
#   replay    time-travel read path: a durable daemon retaining 8 epochs,
#             three historical epochs per computation checked
#             differentially against the offline engine (0 mismatches),
#             the newest epoch re-clustered offline under a different
#             strategy (--replay-as), a SIGKILL crash + restart proving
#             retained history survives recovery, and the warm as-of
#             claim gated: as-of queries <= 2x the head-epoch path
#   place     shard autoscaling: the planted-imbalance soak through a
#             --shards auto daemon (in-process and over the wire), gated
#             on zero differential mismatches AND >= 1 live autoscale
#             action, plus — on >= 4-core hosts — the placement claim:
#             auto + --pin-cores >= 1.3x the worst static shard layout
#             on the planted hot-group trace
#   bench     two cts-bench --quick runs gated against the committed
#             baseline by scripts/bench_gate.py
#
# Usage: ci.sh [stage ...]     (no arguments = all stages)
#        ci.sh --list          (print the stage names, one per line)
#
# A per-stage wall-clock summary is printed on exit — including on
# failure, so a hung CI run's log shows where the time went.
#
# The workspace has zero external dependencies — if any step here needs
# the network (beyond 127.0.0.1), that is itself a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

# All scratch state (port files, crash-recovery data dirs, bench reports)
# lives in one private directory created by mktemp -d: nothing is ever
# placed at a predictable path an attacker or a parallel CI job could
# pre-create, and one rm -rf cleans up every failure path. Setting
# CTS_CI_WORKDIR overrides that with a caller-owned directory that is
# *kept* on exit — the GitHub workflow uses it to upload the scratch
# logs and bench reports as an artifact when a stage fails.
if [[ -n "${CTS_CI_WORKDIR:-}" ]]; then
  workdir="$CTS_CI_WORKDIR"
  mkdir -p "$workdir"
  keep_workdir=1
else
  workdir=$(mktemp -d "${TMPDIR:-/tmp}/cts-ci.XXXXXX")
  keep_workdir=0
fi
pids=()

# Per-stage wall-clock bookkeeping for the summary table printed on exit.
stage_names=()
stage_secs=()
current_stage=""
current_start=0
print_summary() {
  [[ ${#stage_names[@]} -gt 0 || -n "$current_stage" ]] || return 0
  echo
  echo "ci.sh: stage timings"
  printf '  %-10s %9s\n' stage seconds
  local i
  for i in "${!stage_names[@]}"; do
    printf '  %-10s %9s\n' "${stage_names[$i]}" "${stage_secs[$i]}"
  done
  if [[ -n "$current_stage" ]]; then
    printf '  %-10s %9s  (did not finish)\n' "$current_stage" \
      "$((SECONDS - current_start))"
  fi
}

cleanup() {
  for pid in "${pids[@]:-}"; do
    [[ -n "$pid" ]] && kill "$pid" 2>/dev/null || true
  done
  [[ "$keep_workdir" == 1 ]] || rm -rf "$workdir"
  print_summary
}
trap cleanup EXIT

# Wait (up to 10 s) for a daemon started with --port-file to come up, then
# print the port it bound.
wait_port_file() {
  local port_file="$1"
  for _ in $(seq 1 100); do
    [[ -s "$port_file" ]] && break
    sleep 0.1
  done
  [[ -s "$port_file" ]] || {
    echo "ci.sh: daemon never wrote its port file $port_file" >&2
    exit 1
  }
  cat "$port_file"
}

stage_fmt() {
  echo "==> fmt"
  cargo fmt --check
}

stage_clippy() {
  echo "==> clippy (-D warnings)"
  cargo clippy --workspace --all-targets --offline -- -D warnings
}

stage_build() {
  echo "==> build (release, offline)"
  cargo build --release --offline --workspace
}

stage_test() {
  echo "==> test (offline)"
  cargo test -q --offline --workspace
}

stage_smoke() {
  echo "==> smoke: daemon loopback"
  local port_file="$workdir/daemon.port"
  target/release/cts-daemon --port 0 --port-file "$port_file" &
  local daemon_pid=$!
  pids+=("$daemon_pid")
  for _ in $(seq 1 100); do
    [[ -s "$port_file" ]] && break
    sleep 0.1
  done
  [[ -s "$port_file" ]] || {
    echo "ci.sh: daemon never wrote its port file" >&2
    exit 1
  }
  local port
  port=$(cat "$port_file")
  target/release/cts-loadgen --addr "127.0.0.1:$port" --smoke --shutdown
  wait "$daemon_pid"
  echo "ci.sh: daemon smoke ok (port $port)"

  # Record ingest/query throughput in the cts-bench/1 schema (mini suite,
  # in-process daemon, differential checks included).
  target/release/cts-loadgen --quick --json results/BENCH_ingest.json

  # Sharded full-suite soak: all 54 computations through a 4-shard ingest
  # path, every answer differentially checked (exit non-zero on mismatch).
  target/release/cts-loadgen --shards 4
}

stage_recovery() {
  echo "==> recovery: crash-stop mid-suite, restart, verify"
  # Kill the daemon after ~half the mini suite (~2000 events), restart it
  # against the same data dir, and require zero differential mismatches
  # after WAL + checkpoint recovery. --checkpoint-every 200 forces several
  # checkpoint/rotation cycles before the crash.
  target/release/cts-loadgen --quick --data-dir "$workdir/crash" \
    --checkpoint-every 200 --kill-after 1000 --restart

  # Same cycle with a 4-shard ingest path: per-shard WAL segments plus the
  # global checkpoint must recover to the same zero-mismatch state.
  target/release/cts-loadgen --quick --shards 4 --data-dir "$workdir/crash4" \
    --checkpoint-every 200 --kill-after 1000 --restart
}

stage_query() {
  echo "==> query: read-path ratio gates (query_path group)"
  # One filtered run is enough: the claims are *within-run* ratios, so
  # host speed cancels out. --claims-only because a filtered run lacks the
  # calibration kernel (absolute comparisons happen in the bench stage);
  # --require-ratio (not --require-speedup) because a cache hit needs no
  # second core to be fast.
  target/release/cts-bench --quick query_path >"$workdir/bench-query.json"
  python3 scripts/bench_gate.py results/BENCH_baseline.json \
    "$workdir/bench-query.json" --claims-only \
    --require-ratio \
    query_path/precedes_cold_sharded_web_288:query_path/precedes_warm_sharded_web_288:5.0 \
    --require-ratio \
    query_path/precedes_cold_blocked_stencil1d_128:query_path/precedes_warm_blocked_stencil1d_128:5.0 \
    --require-ratio \
    query_path/rtt_single_256:query_path/rtt_batch_256:5.0 \
    --require-ratio \
    query_path/gc_linear_blocked_stencil1d_128:query_path/gc_binary_blocked_stencil1d_128:1.0
}

stage_net() {
  echo "==> net: C10K soak + backend idle-cost ratio gates"
  # A real daemon process (epoll front end by default), a real loadgen
  # process: 10,000 idle connections held open — two processes, so the
  # per-process fd budget covers one end each — while the differential
  # full 54-computation suite runs through the same listener with zero
  # mismatches.
  local port_file="$workdir/net-daemon.port"
  target/release/cts-daemon --port 0 --port-file "$port_file" &
  local daemon_pid=$!
  pids+=("$daemon_pid")
  for _ in $(seq 1 100); do
    [[ -s "$port_file" ]] && break
    sleep 0.1
  done
  [[ -s "$port_file" ]] || {
    echo "ci.sh: daemon never wrote its port file" >&2
    exit 1
  }
  local port
  port=$(cat "$port_file")
  target/release/cts-loadgen --addr "127.0.0.1:$port" --c10k 10000 \
    --shutdown
  wait "$daemon_pid"
  echo "ci.sh: c10k soak ok (port $port)"

  # The thread-per-connection backend stays differentially correct (it is
  # the oracle the epoll front end is checked against).
  target/release/cts-loadgen --quick --net-threads

  # Idle-cost claims, host-independent within-run ratios: the epoll
  # backend must burn <= 1/10 the CPU of the thread backend's polling
  # wakeups while idle, and hold a connection in <= 1/10 the resident
  # memory of a parked connection thread. --claims-only: these entries
  # have no committed baseline (absolute idle cost is host-dependent).
  target/release/cts-loadgen --c10k-bench --json "$workdir/bench-net.json"
  python3 scripts/bench_gate.py results/BENCH_baseline.json \
    "$workdir/bench-net.json" --claims-only \
    --require-ratio \
    daemon_ingest/c10k_idle_cpu_threads:daemon_ingest/c10k_idle_cpu_epoll:10.0 \
    --require-ratio \
    daemon_ingest/c10k_rss_per_conn_threads:daemon_ingest/c10k_rss_per_conn_epoll:10.0
}

stage_repl() {
  echo "==> repl: leader + 2-follower fleet, full-suite soak + scale-out gate"
  # One durable leader (the WAL doubles as the replication stream) and two
  # follower daemon processes replicating it over Subscribe. On hosts with
  # >= 3 cpus each daemon is pinned to its own core, so the leader-vs-fleet
  # comparison measures serving capacity rather than scheduler luck; on
  # smaller hosts bench_gate.py scales the required ratio down by host.cpus
  # (the same policy as the shard_ingest speedup claims).
  local pin_leader=() pin_f1=() pin_f2=()
  if [[ "$(nproc)" -ge 3 ]]; then
    pin_leader=(taskset -c 0)
    pin_f1=(taskset -c 1)
    pin_f2=(taskset -c 2)
  fi
  local lport f1port f2port
  "${pin_leader[@]}" target/release/cts-daemon --port 0     --port-file "$workdir/repl-leader.port"     --data-dir "$workdir/repl-leader" &
  pids+=("$!")
  lport=$(wait_port_file "$workdir/repl-leader.port")

  "${pin_f1[@]}" target/release/cts-daemon --port 0     --port-file "$workdir/repl-f1.port"     --data-dir "$workdir/repl-f1" --follow "127.0.0.1:$lport" &
  local f1_pid=$!
  pids+=("$f1_pid")
  "${pin_f2[@]}" target/release/cts-daemon --port 0     --port-file "$workdir/repl-f2.port"     --data-dir "$workdir/repl-f2" --follow "127.0.0.1:$lport" &
  local f2_pid=$!
  pids+=("$f2_pid")
  f1port=$(wait_port_file "$workdir/repl-f1.port")
  f2port=$(wait_port_file "$workdir/repl-f2.port")

  # Full 54-computation suite into the leader; after the followers
  # converge (published snapshots covering every computation), the
  # differential checks are fanned across the fleet — zero mismatches
  # required — and the warm batched-query workload is timed against the
  # leader alone vs. the two followers (repl/warm_batch_* entries).
  target/release/cts-loadgen --addr "127.0.0.1:$lport"     --follower-addr "127.0.0.1:$f1port" --follower-addr "127.0.0.1:$f2port"     --json "$workdir/bench-repl.json" --shutdown
  kill "$f1_pid" "$f2_pid" 2>/dev/null || true
  wait "$f1_pid" "$f2_pid" 2>/dev/null || true
  echo "ci.sh: replication fleet soak ok (leader $lport, followers $f1port/$f2port)"

  # The read scale-out claim. --claims-only: repl/* entries have no
  # committed baseline (absolute throughput is host-dependent); the
  # within-run leader/fleet ratio is the claim.
  python3 scripts/bench_gate.py results/BENCH_baseline.json     "$workdir/bench-repl.json" --claims-only     --require-speedup     repl/warm_batch_leader:repl/warm_batch_fleet:1.8
}

stage_replay() {
  echo "==> replay: time-travel reads at retained epochs, across a crash"
  # A durable daemon publishing every 64 deliveries and retaining 8
  # epochs. The loadgen streams the mini suite in 32-event wire batches
  # (small frames, so the publish cadence actually fires mid-stream and
  # leaves a ladder of historical epochs), then time-travel-checks three
  # historical epochs per computation differentially against the offline
  # engine — precedence, greatest-concurrent, and window answers at each
  # retained epoch, zero mismatches required — and finally replays the
  # newest epoch offline under a *different* clustering strategy
  # (merge-nth, max cluster size 8) to report the stamp-size delta.
  local port_file="$workdir/replay-daemon.port" port
  target/release/cts-daemon --port 0 --port-file "$port_file" \
    --data-dir "$workdir/replay" --epoch-every 64 --retain-epochs 8 &
  local daemon_pid=$!
  pids+=("$daemon_pid")
  port=$(wait_port_file "$port_file")
  target/release/cts-loadgen --addr "127.0.0.1:$port" --quick --batch 32 \
    --asof-epochs 3 --replay-as mergeNth:8@2

  # Crash-stop (SIGKILL — no graceful checkpoint) and restart on the same
  # data dir: recovery republishes the checkpointed epoch marks, so the
  # retained history must still answer the same as-of checks afterwards.
  kill -9 "$daemon_pid" 2>/dev/null || true
  wait "$daemon_pid" 2>/dev/null || true
  rm -f "$port_file"
  target/release/cts-daemon --port 0 --port-file "$port_file" \
    --data-dir "$workdir/replay" --epoch-every 64 --retain-epochs 8 &
  daemon_pid=$!
  pids+=("$daemon_pid")
  port=$(wait_port_file "$port_file")
  target/release/cts-loadgen --addr "127.0.0.1:$port" --wait-ready 60 \
    --quick --batch 32 --asof-epochs 3 --shutdown
  wait "$daemon_pid" 2>/dev/null || true
  echo "ci.sh: replay soak ok (history survived the crash, port $port)"

  # The warm as-of claim: answering at a retained historical epoch costs
  # <= 2x the same queries at the head (head/asof >= 0.5 within-run).
  # --claims-only: the filtered run lacks the calibration kernel; the
  # absolute numbers are gated by the bench stage.
  target/release/cts-bench --quick timetravel >"$workdir/bench-replay.json"
  python3 scripts/bench_gate.py results/BENCH_baseline.json \
    "$workdir/bench-replay.json" --claims-only \
    --require-ratio \
    timetravel/precedes_head_256:timetravel/precedes_asof_256:0.5
}

stage_adapt() {
  echo "==> adapt: online adaptive re-clustering, drift soak + schedule exploration"
  # Schedule-exploration tests for the migration path: seeded random and
  # exhaustive-tiny schedules through the sharded runtime, migration
  # mid-sync-pair / across epoch publish / across a crash, and the
  # follower replaying the leader's migration stream. On failure the
  # shrinker writes the minimal failing schedule into the workdir so the
  # CI artifact upload preserves it.
  CTS_ARTIFACT_DIR="$workdir" cargo test -q --release --test adaptive_recluster

  # In-process drift soak: the planted-drift fixtures streamed through an
  # adaptive daemon, segmented at the planted phase boundaries so the
  # cluster-receive-ratio curves line up with the plants. Gates: zero
  # differential mismatches AND >= 1 migration per fixture (detector
  # liveness), plus time-travel checks at 3 retained epochs.
  target/release/cts-loadgen --drift --epoch-every 256 --asof-epochs 3 \
    >"$workdir/drift-curves.txt"
  tail -n 4 "$workdir/drift-curves.txt"

  # The same soak against a real daemon process started with --adaptive
  # (exercises the wire-level QueryClusterMap path end to end).
  local port_file="$workdir/adapt-daemon.port" port
  target/release/cts-daemon --port 0 --port-file "$port_file" \
    --adaptive 12 --epoch-every 256 --retain-epochs 8 &
  pids+=("$!")
  port=$(wait_port_file "$port_file")
  target/release/cts-loadgen --drift --addr "127.0.0.1:$port" \
    --asof-epochs 3 --shutdown >"$workdir/drift-curves-net.txt"

  # The quality claim: on each drift trace the adaptive engine's
  # cluster-receive count beats the *worst* static strategy by >= 1.2x
  # (scalar count entries — see bench_adaptive — so the ratio is
  # host-independent; --claims-only because the filtered run lacks the
  # calibration kernel).
  target/release/cts-bench --quick adaptive >"$workdir/bench-adapt.json"
  python3 scripts/bench_gate.py results/BENCH_baseline.json \
    "$workdir/bench-adapt.json" --claims-only \
    --require-ratio \
    adaptive/cr_static_worst_stencil:adaptive/cr_adaptive_stencil:1.2 \
    --require-ratio \
    adaptive/cr_static_worst_tiers:adaptive/cr_adaptive_tiers:1.2
}

stage_place() {
  echo "==> place: shard autoscaling, planted-imbalance soak + topology placement"
  # In-process soak: planted hot-group fixtures through a --shards auto
  # daemon, the placement sampled mid-stream over the wire. Gates: zero
  # differential mismatches AND >= 1 live autoscale action (a dead
  # autoscaler fails even when every answer is right). Splits happen
  # between batches under the freeze mutex only — ingest on the other
  # shards never stops.
  target/release/cts-loadgen --place >"$workdir/place-soak.txt"
  tail -n 2 "$workdir/place-soak.txt"

  # The same soak against a real daemon process started with --shards
  # auto --pin-cores (exercises the QueryPlacement wire verb and the
  # sysfs topology plan end to end).
  local port_file="$workdir/place-daemon.port" port
  target/release/cts-daemon --port 0 --port-file "$port_file" \
    --shards auto --pin-cores &
  pids+=("$!")
  port=$(wait_port_file "$port_file")
  target/release/cts-loadgen --place --addr "127.0.0.1:$port" \
    --shutdown >"$workdir/place-soak-net.txt"

  # The perf claim: auto + pinning beats the *worst* static layout by
  # >= 1.3x on the planted hot-group trace. Only meaningful where there
  # is parallelism for placement to reclaim, so hosts below 4 cores
  # skip it (the soak gates above still ran).
  local cpus
  cpus=$(nproc)
  if ((cpus >= 4)); then
    target/release/cts-bench --quick placement >"$workdir/bench-place.json"
    python3 scripts/bench_gate.py results/BENCH_baseline.json \
      "$workdir/bench-place.json" --claims-only \
      --require-speedup \
      placement/hot6g4w_s1:placement/hot6g4w_auto_pin:1.3
  else
    echo "place: host has $cpus cpu(s) < 4; skipping the speedup claim"
  fi
}

stage_bench() {
  echo "==> bench: quick suite x2 vs committed baseline"
  target/release/cts-bench --quick >"$workdir/bench-1.json"
  target/release/cts-bench --quick >"$workdir/bench-2.json"
  # The speedup claims gate the sharded ingest path: >= 1.8x at 4 shards
  # vs 1 on the widest computations (scaled down by bench_gate.py when the
  # host has fewer than 4 cores — see SPEEDUP_REF_CPUS).
  python3 scripts/bench_gate.py results/BENCH_baseline.json \
    "$workdir/bench-1.json" "$workdir/bench-2.json" \
    --require-speedup \
    shard_ingest/blocked_stencil1d_128_s1:shard_ingest/blocked_stencil1d_128_s4:1.8 \
    --require-speedup \
    shard_ingest/sharded_web_288_s1:shard_ingest/sharded_web_288_s4:1.8
}

all_stages=(fmt clippy build test smoke recovery query net repl replay adapt place bench)
if [[ "${1:-}" == "--list" ]]; then
  printf '%s\n' "${all_stages[@]}"
  exit 0
fi
stages=("${@:-${all_stages[@]}}")
for stage in "${stages[@]}"; do
  case "$stage" in
  fmt | clippy | build | test | smoke | recovery | query | net | repl | replay | adapt | place | bench)
    current_stage="$stage"
    current_start=$SECONDS
    "stage_$stage"
    stage_names+=("$stage")
    stage_secs+=("$((SECONDS - current_start))")
    current_stage=""
    ;;
  *)
    echo "ci.sh: unknown stage '$stage' (known: ${all_stages[*]})" >&2
    exit 2
    ;;
  esac
done
echo "ci.sh: all green (${stages[*]})"
