#!/usr/bin/env python3
"""Patch EXPERIMENTS.md's <!--…--> placeholders from results/*.csv and the
printed experiment report. Run after `cts-experiments all --out results`."""

import csv
import collections
import re
import sys

RESULTS = "results"
DOC = "EXPERIMENTS.md"


def sweep_curves(path, strategy_filter=None, trace_filter=None):
    curves = collections.defaultdict(dict)
    for r in csv.DictReader(open(path)):
        if strategy_filter and r["strategy"] != strategy_filter:
            continue
        if trace_filter and not trace_filter(r["trace"]):
            continue
        curves[(r["trace"], r["strategy"])][int(r["max_cluster_size"])] = float(r["ratio"])
    return curves


def best(curve):
    s = min(curve, key=curve.get)
    return s, curve[s]


def within(curve, slack=0.2):
    _, b = best(curve)
    return sorted(s for s, r in curve.items() if r <= b * (1 + slack))


def fig_summary(path):
    out = []
    curves = sweep_curves(path)
    by_trace = collections.defaultdict(list)
    for (t, s), c in curves.items():
        by_trace[t].append((s, c))
    for t, entries in by_trace.items():
        line = [f"`{t}`:"]
        for s, c in sorted(entries):
            bs, br = best(c)
            jump = max(
                abs(c[a + 1] - c[a]) / max(c[a], 1e-12)
                for a in c
                if a + 1 in c
            )
            line.append(f"{s} best {br:.3f}@{bs} (max jump {jump:.0%});")
        out.append(" ".join(line))
    return "\n".join(f"  - {l}" for l in out)


def grep(report, pattern):
    m = re.search(pattern, report, re.M)
    return m.group(1).strip() if m else "(not found)"


def main():
    doc = open(DOC).read()
    report = open(f"{RESULTS}/full_report.txt").read()

    fills = {}
    fills["FIG4"] = "\n" + fig_summary(f"{RESULTS}/fig4.csv")
    fills["FIG5"] = "\n" + fig_summary(f"{RESULTS}/fig5.csv")

    claims = dict(
        (r["claim"], r["value"]) for r in csv.DictReader(open(f"{RESULTS}/claims.csv"))
    )
    fills["C1"] = f"longest consecutive all-but-one range: {claims['c1_range']}"
    fills["C2"] = (
        f"sizes good for all: {claims['c2_universal']}"
        + " (the hypercube butterfly is the lone holdout at every size — "
        "it has no bounded locality scale)"
        if claims["c2_universal"] == "[]"
        else f"sizes good for all: {claims['c2_universal']}"
    )
    fills["C3"] = f"best coverage at any single size: {claims['c3_best_coverage']}"
    fills["C4"] = f"{claims['c4_violators']} computations outside 20% across 22..=24"

    syn = re.search(r"== Synthetic extremes.*?==\n(.*?)\n\n", report, re.S)
    fills["CSYN"] = (
        "\n```\n" + syn.group(1).strip() + "\n```" if syn else "(see full_report.txt)"
    )

    m2 = re.search(
        r"greatest-concurrent query: (\d+) page reads for (\d+) element touches",
        report,
    )
    fills["M2"] = (
        f"{m2.group(1)} page reads for {m2.group(2)} element touches "
        "(≈1 page per element touched — the thrashing shape; our query "
        "implementation is leaner than Ward's, hence fewer absolute pages)"
        if m2
        else "(see full_report.txt)"
    )
    m1 = re.search(r"measured at .*? — (exact|MISMATCH)", report)
    fills["M1"] = f"({m1.group(1)})" if m1 else ""
    m3_rows = re.findall(r"N=\s*(\d+): +(\d+) element ops per precedence query", report)
    fills["M3"] = (
        "; ".join(f"N={n}: {ops} elem-ops/query" for n, ops in m3_rows)
        if m3_rows
        else "(see full_report.txt)"
    )

    rw = re.search(r"(trace +N +SK-ratio.*?)\n\(paper", report, re.S)
    fills["RW"] = "\n```\n" + rw.group(1).strip() + "\n```" if rw else "(see report)"

    a1 = re.search(r"(trace +greedy +unnorm.*?)\n\(§3.1", report, re.S)
    fills["A1"] = "\n```\n" + a1.group(1).strip() + "\n```" if a1 else "(see report)"
    a2 = re.search(r"(best contiguous:.*?degrades: \w+\))", report, re.S)
    fills["A2"] = "\n```\n" + a2.group(1).strip() + "\n```" if a2 else "(see report)"

    x1 = re.search(r"== Hybrid.*?==\n(.*?)\n\(fractions", report, re.S)
    fills["X1"] = "\n```\n" + x1.group(1).strip() + "\n```" if x1 else ""
    x2 = re.search(r"== Migration extension.*?==\n(.*?)\n\(migration matters", report, re.S)
    fills["X2"] = "\n```\n" + x2.group(1).strip() + "\n```" if x2 else ""
    x3 = re.search(r"== Hierarchy depth.*?==\n(.*?)\n\(the extra level", report, re.S)
    fills["X3"] = "\n```\n" + x3.group(1).strip() + "\n```" if x3 else ""

    for key, val in fills.items():
        doc = doc.replace(f"<!--{key}-->", val)
    open(DOC, "w").write(doc)
    leftovers = re.findall(r"<!--\w+-->", doc)
    print(f"filled {len(fills)} placeholders; leftovers: {leftovers}")


if __name__ == "__main__":
    sys.exit(main())
