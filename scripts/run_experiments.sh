#!/usr/bin/env bash
# Regenerate the paper's figures and claims over the standard suite and
# archive both output streams:
#
#   results/full_report.txt  — the report itself (tables, ASCII plots; stdout)
#   results/full_report.log  — progress/status lines (stderr)
#
# The status stream is *not* an error log — `cts-experiments` prints progress
# to stderr precisely so stdout stays a clean, diffable report. Name the
# capture accordingly (.log, not .err).
#
# usage: scripts/run_experiments.sh [--quick] [experiment...]
#        (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

args=("$@")
if [[ ${#args[@]} -eq 0 || ( ${#args[@]} -eq 1 && ${args[0]} == "--quick" ) ]]; then
  args+=(all)
fi

cargo build --release --offline -p cts-analysis
target/release/cts-experiments "${args[@]}" \
  > results/full_report.txt \
  2> >(tee results/full_report.log >&2)

echo "run_experiments.sh: report in results/full_report.txt," \
     "status in results/full_report.log"
