#!/usr/bin/env python3
"""Bench regression gate for cts-bench/1 reports.

Compares candidate reports (fresh `cts-bench --quick` runs) against the
committed baseline and fails when any benchmark regresses beyond its
group's tolerance.

Usage:
    bench_gate.py BASELINE.json CANDIDATE.json [CANDIDATE2.json ...]
                  [--tolerance 0.35]

Design notes:
- gates on *min_ns*, not median: for deterministic CPU-bound benches the
  best observed time is the least scheduler-polluted one. Measured on
  this container, back-to-back --quick runs vary up to ~1.2x in min but
  ~1.7x in median.
- multiple candidate files are merged by per-bench minimum — CI runs the
  suite twice, so a single noisy run cannot fail the gate.
- tolerance is a *ratio slack*: best_candidate/baseline > 1 + tol fails.
- micro-benches under FLOOR_NS are skipped — a 40ns bench regressing to
  60ns is timer noise, not a regression.
- groups that exercise the OS (fsync, TCP round-trips, thread handoff)
  get wider tolerances via NOISY_GROUPS; everything else uses the default.
- improvements never fail the gate, they are just reported.

Only the Python standard library is used (the CI container is offline).
"""

import argparse
import json
import sys

# Per-group tolerance overrides for benches dominated by syscalls or
# scheduling rather than CPU work. Key = group name, value = ratio slack.
NOISY_GROUPS = {
    "wal": 0.80,  # fsync latency varies with device queue depth
    "daemon_ingest": 0.60,  # TCP + thread handoff
    "daemon_query": 0.60,  # round-trip latency
    "reorder_buffer": 0.50,  # allocation-heavy, sensitive to heap state
}

# Benches faster than this are pure timer noise at --quick sample counts.
FLOOR_NS = 100.0


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_gate: cannot read {path}: {e}")
    if report.get("schema") != "cts-bench/1":
        sys.exit(f"bench_gate: {path}: unexpected schema {report.get('schema')!r}")
    out = {}
    for b in report.get("benches", []):
        out[f"{b['group']}/{b['name']}"] = float(b["min_ns"])
    if not out:
        sys.exit(f"bench_gate: {path}: no benches in report")
    return out


def merge_min(reports):
    merged = {}
    for rep in reports:
        for bench_id, ns in rep.items():
            if bench_id not in merged or ns < merged[bench_id]:
                merged[bench_id] = ns
    return merged


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidates", nargs="+", metavar="candidate")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="default allowed slowdown ratio slack (default 0.35 = +35%%)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cand = merge_min([load(p) for p in args.candidates])

    shared = sorted(set(base) & set(cand))
    added = sorted(set(cand) - set(base))
    removed = sorted(set(base) - set(cand))

    regressions = []
    improvements = []
    print(f"{'benchmark':<52} {'base':>10} {'cand':>10} {'delta':>8}  verdict")
    for bench_id in shared:
        b, c = base[bench_id], cand[bench_id]
        group = bench_id.split("/", 1)[0]
        tol = NOISY_GROUPS.get(group, args.tolerance)
        ratio = c / b if b > 0 else float("inf")
        delta = f"{(ratio - 1) * 100:+.1f}%"
        if b < FLOOR_NS and c < FLOOR_NS:
            verdict = "skip (sub-floor)"
        elif ratio > 1 + tol:
            verdict = f"REGRESSION (>{tol:.0%})"
            regressions.append((bench_id, ratio, tol))
        elif ratio < 1 - tol:
            verdict = "improved"
            improvements.append((bench_id, ratio))
        else:
            verdict = "ok"
        print(f"{bench_id:<52} {b:>10.0f} {c:>10.0f} {delta:>8}  {verdict}")

    for bench_id in added:
        print(f"{bench_id:<52} {'--':>10} {cand[bench_id]:>10.0f} {'new':>8}  "
              "not in baseline (re-baseline to gate it)")
    for bench_id in removed:
        print(f"{bench_id:<52} {base[bench_id]:>10.0f} {'--':>10} {'gone':>8}  "
              "missing from candidate")

    print()
    if improvements:
        print(f"bench_gate: {len(improvements)} improved beyond tolerance "
              "(consider re-baselining)")
    if removed:
        print(f"bench_gate: FAIL — {len(removed)} baseline bench(es) missing")
        return 1
    if regressions:
        print(f"bench_gate: FAIL — {len(regressions)} regression(s):")
        for bench_id, ratio, tol in regressions:
            print(f"  {bench_id}: {ratio:.2f}x baseline (allowed {1 + tol:.2f}x)")
        return 1
    print(f"bench_gate: PASS — {len(shared)} benches within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
