#!/usr/bin/env python3
"""Bench regression gate for cts-bench/1 reports.

Compares candidate reports (fresh `cts-bench --quick` runs) against the
committed baseline and fails when any benchmark regresses beyond its
group's tolerance.

Usage:
    bench_gate.py BASELINE.json CANDIDATE.json [CANDIDATE2.json ...]
                  [--tolerance 0.35] [--subset]
                  [--require-speedup SLOW_ID:FAST_ID:RATIO ...]
                  [--require-ratio SLOW_ID:FAST_ID:RATIO ...]

Design notes:
- gates on *min_ns*, not median: for deterministic CPU-bound benches the
  best observed time is the least scheduler-polluted one. Measured on
  this container, back-to-back --quick runs vary up to ~1.2x in min but
  ~1.7x in median.
- multiple candidate files are merged by per-bench minimum — CI runs the
  suite twice, so a single noisy run cannot fail the gate.
- tolerance is a *ratio slack*: best_candidate/baseline > 1 + tol fails.
- micro-benches under FLOOR_NS are skipped — a 40ns bench regressing to
  60ns is timer noise, not a regression.
- groups that exercise the OS (fsync, TCP round-trips, thread handoff)
  get wider tolerances via NOISY_GROUPS; everything else uses the default.
- improvements never fail the gate, they are just reported.
- the `calibration/fixed_work` bench (a fixed single-thread ALU kernel)
  normalizes across hosts: when both reports carry it, every candidate/
  baseline ratio is divided by the calibration ratio, so a committed
  baseline from a faster or slower machine gates without re-baselining.
- `--require-speedup SLOW_ID:FAST_ID:RATIO` asserts a parallel-scaling
  claim *within* the candidate reports (e.g. 4-shard ingest >= 1.8x the
  1-shard time). The required ratio is scaled by the candidate host's
  available parallelism (reports record `host.cpus`): a host with fewer
  than SPEEDUP_REF_CPUS cores cannot physically deliver the speedup, so
  the requirement degrades proportionally (x0.8 overhead slack) into a
  sanity bound that still catches sharding collapsing throughput.
- `--require-ratio SLOW_ID:FAST_ID:RATIO` is the same claim *without*
  the parallelism scaling — for single-thread algorithmic or caching
  claims (warm-cache vs cold-path, binary vs linear search) that must
  hold on any host, including a 1-cpu CI container.
- `--subset` tolerates baseline benches missing from the candidate —
  for gating a *filtered* run (`cts-bench query_path`) against the full
  committed baseline. Regressions in the benches that are present still
  fail.
- `--claims-only` skips the per-bench baseline comparison entirely and
  evaluates only the --require-* claims. Use for filtered runs that lack
  the calibration kernel (no host normalization): within-run ratios are
  still meaningful there, absolute comparisons are not. The full-run
  bench stage remains the regression gate for those benches.

Only the Python standard library is used (the CI container is offline).
"""

import argparse
import json
import os
import sys

# Per-group tolerance overrides for benches dominated by syscalls or
# scheduling rather than CPU work. Key = group name, value = ratio slack.
NOISY_GROUPS = {
    "wal": 0.80,  # fsync latency varies with device queue depth
    "daemon_ingest": 0.60,  # TCP + thread handoff
    "daemon_query": 0.60,  # round-trip latency
    "reorder_buffer": 0.50,  # allocation-heavy, sensitive to heap state
    "precedence_256_queries": 0.60,  # per-query reconstruction allocates;
    # observed ~1.8x min-of-run spread across processes on 1-cpu CI
    "shard_ingest": 0.60,  # spawns worker threads, cross-shard handoff
    "query_path": 0.60,  # loopback RTTs + lock handoff under 1-cpu CI
    "timetravel": 0.60,  # loopback RTTs against retained-epoch snapshots
    "placement": 0.60,  # live split/steal migrations + worker threads
}

# Benches faster than this are pure timer noise at --quick sample counts.
FLOOR_NS = 100.0

# The host-speed reference bench; never gated itself.
CALIBRATION_ID = "calibration/fixed_work"

# --require-speedup claims assume this many cores (the 4-shard sweep).
SPEEDUP_REF_CPUS = 4

# Parallel-overhead slack applied when the host has fewer cores than the
# claim assumes: threads still pay handoff costs they cannot amortize.
SPEEDUP_UNDERPROVISIONED_SLACK = 0.8


def load(path):
    """Returns ({bench_id: min_ns}, cpus-or-None)."""
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_gate: cannot read {path}: {e}")
    if report.get("schema") != "cts-bench/1":
        sys.exit(f"bench_gate: {path}: unexpected schema {report.get('schema')!r}")
    out = {}
    for b in report.get("benches", []):
        out[f"{b['group']}/{b['name']}"] = float(b["min_ns"])
    if not out:
        sys.exit(f"bench_gate: {path}: no benches in report")
    return out, report.get("host", {}).get("cpus")


def merge_min(reports):
    merged = {}
    for rep in reports:
        for bench_id, ns in rep.items():
            if bench_id not in merged or ns < merged[bench_id]:
                merged[bench_id] = ns
    return merged


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidates", nargs="+", metavar="candidate")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="default allowed slowdown ratio slack (default 0.35 = +35%%)",
    )
    ap.add_argument(
        "--require-speedup",
        action="append",
        default=[],
        metavar="SLOW_ID:FAST_ID:RATIO",
        help="require min_ns(SLOW_ID)/min_ns(FAST_ID) >= RATIO within the "
        "merged candidates, scaled by the candidate host's parallelism",
    )
    ap.add_argument(
        "--require-ratio",
        action="append",
        default=[],
        metavar="SLOW_ID:FAST_ID:RATIO",
        help="as --require-speedup but host-independent: no parallelism "
        "scaling (single-thread algorithmic/caching claims)",
    )
    ap.add_argument(
        "--subset",
        action="store_true",
        help="candidate is a filtered run; baseline benches it lacks are "
        "reported but do not fail the gate",
    )
    ap.add_argument(
        "--claims-only",
        action="store_true",
        help="skip the per-bench baseline comparison; evaluate only the "
        "--require-speedup / --require-ratio claims",
    )
    args = ap.parse_args()

    base, _base_cpus = load(args.baseline)
    loaded = [load(p) for p in args.candidates]
    cand = merge_min([benches for benches, _ in loaded])
    # Parallelism for speedup-claim scaling. The candidate report's recorded
    # `host.cpus` (available_parallelism at bench time, which respects
    # cgroup/affinity limits) is authoritative; `os.cpu_count()` is only a
    # fallback for pre-schema-host reports, and it counts *logical* CPUs
    # including SMT siblings, so it can overstate the parallelism actually
    # available to the bench and make speedup requirements too strict.
    cand_cpus = next((c for _, c in loaded if c), None)
    if cand_cpus is None:
        cand_cpus = os.cpu_count() or 1
        print(f"warning: no candidate report records host.cpus; falling "
              f"back to os.cpu_count()={cand_cpus} (logical CPUs incl. "
              "SMT — may overstate available parallelism)")

    shared = sorted(set(base) & set(cand))
    added = sorted(set(cand) - set(base))
    removed = sorted(set(base) - set(cand))
    if args.claims_only:
        print("claims-only: skipping the per-bench baseline comparison")
        shared, added, removed = [], [], []

    # Host-speed normalization: if both reports carry the calibration
    # kernel, divide every candidate/baseline ratio by its ratio.
    scale = 1.0
    if CALIBRATION_ID in base and CALIBRATION_ID in cand:
        scale = cand[CALIBRATION_ID] / base[CALIBRATION_ID]
        print(f"calibration: candidate host runs {CALIBRATION_ID} at "
              f"{scale:.2f}x the baseline host's time; normalizing")

    regressions = []
    improvements = []
    print(f"{'benchmark':<52} {'base':>10} {'cand':>10} {'delta':>8}  verdict")
    for bench_id in shared:
        b, c = base[bench_id], cand[bench_id]
        group = bench_id.split("/", 1)[0]
        tol = NOISY_GROUPS.get(group, args.tolerance)
        ratio = (c / b) / scale if b > 0 else float("inf")
        delta = f"{(ratio - 1) * 100:+.1f}%"
        if bench_id == CALIBRATION_ID:
            verdict = "calibration ref"
        elif b < FLOOR_NS and c < FLOOR_NS:
            verdict = "skip (sub-floor)"
        elif ratio > 1 + tol:
            verdict = f"REGRESSION (>{tol:.0%})"
            regressions.append((bench_id, ratio, tol))
        elif ratio < 1 - tol:
            verdict = "improved"
            improvements.append((bench_id, ratio))
        else:
            verdict = "ok"
        print(f"{bench_id:<52} {b:>10.0f} {c:>10.0f} {delta:>8}  {verdict}")

    for bench_id in added:
        print(f"{bench_id:<52} {'--':>10} {cand[bench_id]:>10.0f} {'new':>8}  "
              "not in baseline (re-baseline to gate it)")
    for bench_id in removed:
        print(f"{bench_id:<52} {base[bench_id]:>10.0f} {'--':>10} {'gone':>8}  "
              "missing from candidate")

    def parse_claim(flag, claim):
        try:
            slow_id, fast_id, want_s = claim.rsplit(":", 2)
            want = float(want_s)
        except ValueError:
            sys.exit(f"bench_gate: bad {flag} {claim!r} "
                     "(want SLOW_ID:FAST_ID:RATIO)")
        missing = [i for i in (slow_id, fast_id) if i not in cand]
        if missing:
            sys.exit(f"bench_gate: {flag}: {', '.join(missing)} "
                     "not in candidate reports")
        return slow_id, fast_id, want

    speedup_failures = []
    for claim in args.require_speedup:
        slow_id, fast_id, want = parse_claim("--require-speedup", claim)
        required = want
        if cand_cpus < SPEEDUP_REF_CPUS:
            required = (want * cand_cpus / SPEEDUP_REF_CPUS
                        * SPEEDUP_UNDERPROVISIONED_SLACK)
            print(f"speedup: host has {cand_cpus} cpu(s) < "
                  f"{SPEEDUP_REF_CPUS} the claim assumes; requirement "
                  f"{want:.2f}x degraded to sanity bound {required:.2f}x")
        got = cand[slow_id] / cand[fast_id] if cand[fast_id] > 0 else 0.0
        ok = got >= required
        print(f"speedup: {slow_id} / {fast_id} = {got:.2f}x "
              f"(required {required:.2f}x) {'ok' if ok else 'FAIL'}")
        if not ok:
            speedup_failures.append((claim, got, required))
    for claim in args.require_ratio:
        slow_id, fast_id, want = parse_claim("--require-ratio", claim)
        got = cand[slow_id] / cand[fast_id] if cand[fast_id] > 0 else 0.0
        ok = got >= want
        print(f"ratio:   {slow_id} / {fast_id} = {got:.2f}x "
              f"(required {want:.2f}x) {'ok' if ok else 'FAIL'}")
        if not ok:
            speedup_failures.append((claim, got, want))

    print()
    if improvements:
        print(f"bench_gate: {len(improvements)} improved beyond tolerance "
              "(consider re-baselining)")
    if removed and args.subset:
        print(f"bench_gate: {len(removed)} baseline bench(es) not in this "
              "filtered run (--subset: not gated)")
    elif removed:
        print(f"bench_gate: FAIL — {len(removed)} baseline bench(es) missing")
        return 1
    if regressions:
        print(f"bench_gate: FAIL — {len(regressions)} regression(s):")
        for bench_id, ratio, tol in regressions:
            print(f"  {bench_id}: {ratio:.2f}x baseline (allowed {1 + tol:.2f}x)")
        return 1
    if speedup_failures:
        print(f"bench_gate: FAIL — {len(speedup_failures)} speedup claim(s):")
        for claim, got, required in speedup_failures:
            print(f"  {claim}: {got:.2f}x (required {required:.2f}x)")
        return 1
    print(f"bench_gate: PASS — {len(shared)} benches within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
