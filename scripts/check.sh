#!/usr/bin/env bash
# Tier-1 verification: offline build, full test suite, formatting, and a
# daemon loopback smoke test.
# The workspace has zero external dependencies — if any step here needs the
# network (beyond 127.0.0.1), that is itself a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo fmt --check

# Daemon loopback smoke: start cts-daemon on an ephemeral port, replay one
# SPMD computation through it with differential checks, ask it to shut down
# over the wire, and require a clean exit.
port_file=$(mktemp)
rm -f "$port_file"
target/release/cts-daemon --port 0 --port-file "$port_file" &
daemon_pid=$!
trap 'kill "$daemon_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  [[ -s "$port_file" ]] && break
  sleep 0.1
done
[[ -s "$port_file" ]] || { echo "check.sh: daemon never wrote its port file" >&2; exit 1; }
port=$(cat "$port_file")
target/release/cts-loadgen --addr "127.0.0.1:$port" --smoke --shutdown
wait "$daemon_pid"
trap - EXIT
rm -f "$port_file"
echo "check.sh: daemon smoke ok (port $port)"

# Record ingest/query throughput in the cts-bench/1 schema (mini suite,
# in-process daemon, differential checks included).
target/release/cts-loadgen --quick --json results/BENCH_ingest.json

echo "check.sh: all green"
