#!/usr/bin/env bash
# Tier-1 verification: offline build, full test suite, formatting, and a
# daemon loopback smoke test. Thin wrapper over the tier-1 stages of the
# full CI pipeline (scripts/ci.sh) — run ci.sh with no arguments for the
# complete gate including clippy, crash-recovery, and bench regression.
set -euo pipefail
exec "$(dirname "$0")/ci.sh" fmt build test smoke
