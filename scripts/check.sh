#!/usr/bin/env bash
# Tier-1 verification: offline build, full test suite, formatting.
# The workspace has zero external dependencies — if any step here needs the
# network, that is itself a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --check

echo "check.sh: all green"
